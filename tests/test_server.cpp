//===- test_server.cpp - Multi-tenant server chaos soak --------------------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chaos-soak and state-machine tests for the multi-tenant inference
/// server (server/Server.h). Central properties:
///   - byte-identity: every *completed* response under a seeded chaos
///     schedule (transient faults + bit flips) matches the fault-free
///     run, at 1/2/8 worker lanes, on both CKKS schemes;
///   - deterministic isolation: per-tenant counters -- including circuit-
///     breaker trips, half-open probes, and recoveries -- are identical
///     at every lane count for a fixed submission schedule;
///   - typed degradation: overload, throttling, stale keys, expired
///     budgets, and drain all surface as structured rejections, never a
///     crash or a wrong answer.
/// Plus the DeadlineScope min-combining regression test and the
/// concurrent-sessions / shared-PlaintextCache race test (runs under the
/// TSan CI job).
///
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include "ckks/BigCkks.h"
#include "ckks/RnsCkks.h"
#include "ckks/Serialization.h"
#include "core/Compiler.h"
#include "hisa/FaultInjectionBackend.h"
#include "hisa/IntegrityBackend.h"
#include "hisa/PlainBackend.h"
#include "nn/Networks.h"
#include "support/Prng.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <thread>
#include <type_traits>

using namespace chet;

namespace {

struct PoolGuard {
  ~PoolGuard() { setGlobalThreadCount(0); }
};

/// Same tiny conv -> act -> pool -> FC circuit test_session.cpp uses:
/// fast under real encryption, still exercises every kernel family.
TensorCircuit smallCircuit(uint64_t Seed = 50) {
  Prng Rng(Seed);
  TensorCircuit Circ("server-tiny");
  ConvWeights Conv(2, 1, 3, 3);
  for (double &V : Conv.W)
    V = Rng.nextDouble(-0.5, 0.5);
  FcWeights Fc(4, 2 * 4 * 4);
  for (double &V : Fc.W)
    V = Rng.nextDouble(-0.3, 0.3);
  int X = Circ.input(1, 8, 8);
  Circ.setLabel(X, "in");
  X = Circ.conv2d(X, Conv, 1, 1);
  Circ.setLabel(X, "conv1");
  X = Circ.polyActivation(X, 0.25, 0.5);
  Circ.setLabel(X, "act1");
  X = Circ.averagePool(X, 2, 2);
  Circ.setLabel(X, "pool1");
  X = Circ.fullyConnected(X, Fc);
  Circ.setLabel(X, "fc1");
  Circ.output(X);
  return Circ;
}

CompiledCircuit compileSmall(const TensorCircuit &Circ, SchemeKind Scheme) {
  CompilerOptions O;
  O.Scheme = Scheme;
  O.Security = SecurityLevel::Classical128;
  O.Scales = ScaleConfig::fromExponents(25, 25, 25, 12);
  return compileCircuit(Circ, O);
}

template <typename To, typename From>
CipherTensor<To> retag(CipherTensor<From> T) {
  static_assert(std::is_same_v<typename To::Ct, typename From::Ct>);
  CipherTensor<To> Out;
  Out.L = T.L;
  Out.Cts = std::move(T.Cts);
  return Out;
}

template <typename CtVec>
std::vector<ByteBuffer> serializeAll(const CtVec &Cts) {
  std::vector<ByteBuffer> Bytes;
  for (const auto &Ct : Cts)
    Bytes.push_back(serialize(Ct));
  return Bytes;
}

void expectSameBytes(const std::vector<ByteBuffer> &Want,
                     const std::vector<ByteBuffer> &Got, const char *What) {
  ASSERT_EQ(Want.size(), Got.size()) << What;
  for (size_t I = 0; I < Want.size(); ++I)
    EXPECT_EQ(Want[I], Got[I]) << What << ": ciphertext " << I << " differs";
}

using RnsInteg = IntegrityBackend<RnsCkksBackend>;
using RnsChaos = FaultInjectionBackend<RnsInteg>;
using BigInteg = IntegrityBackend<BigCkksBackend>;
using BigChaos = FaultInjectionBackend<BigInteg>;
using PlainChaos = FaultInjectionBackend<PlainBackend>;

constexpr uint64_t BackendSeed = 991;

/// ScaleConfig for the PlainBackend tenants (no compiler involved).
ScaleConfig plainScales() { return ScaleConfig::fromExponents(25, 25, 25, 12); }

/// Fast retry policy so failure-heavy soaks do not sleep.
SessionRetryPolicy fastRetry(int MaxAttempts) {
  SessionRetryPolicy R;
  R.MaxAttempts = MaxAttempts;
  R.BackoffBaseSeconds = 1e-6;
  R.BackoffMaxSeconds = 1e-5;
  return R;
}

//===----------------------------------------------------------------------===//
// DeadlineScope min-combining (regression for the nesting fix)
//===----------------------------------------------------------------------===//

TEST(DeadlineScope, NestedScopeNeverExtendsEnclosingTighterDeadline) {
  // Outer scope already expired; a generous inner scope must NOT undo it.
  DeadlineScope Outer(Deadline::afterSeconds(-1.0));
  EXPECT_THROW(checkActiveDeadline("outer"), DeadlineExceededError);
  {
    DeadlineScope Inner(Deadline::afterSeconds(1000.0));
    EXPECT_THROW(checkActiveDeadline("inner"), DeadlineExceededError);
  }
  // Popping the inner scope restores the (still expired) outer one.
  EXPECT_THROW(checkActiveDeadline("outer again"), DeadlineExceededError);
}

TEST(DeadlineScope, NestedTighterScopeAppliesAndPops) {
  DeadlineScope Outer(Deadline::afterSeconds(1000.0));
  EXPECT_NO_THROW(checkActiveDeadline("loose outer"));
  {
    DeadlineScope Inner(Deadline::afterSeconds(-1.0));
    EXPECT_THROW(checkActiveDeadline("tight inner"), DeadlineExceededError);
  }
  EXPECT_NO_THROW(checkActiveDeadline("outer restored"));
}

//===----------------------------------------------------------------------===//
// Token bucket and circuit breaker state machines (unit level)
//===----------------------------------------------------------------------===//

TEST(TokenBucket, LogicalTickRefillIsDeterministic) {
  TokenBucketPolicy P;
  P.RatePerTick = 0.5;
  P.Burst = 2.0;
  TokenBucket A(P, 7), B(P, 7);
  std::vector<bool> PatA, PatB;
  for (uint64_t Tick = 0; Tick < 32; ++Tick) {
    PatA.push_back(A.tryAcquire(Tick));
    PatB.push_back(B.tryAcquire(Tick));
  }
  EXPECT_EQ(PatA, PatB); // same seed -> same admission pattern
  // Rate 0.5/tick must admit roughly half the stream once the burst is
  // spent: strictly between "none throttled" and "all throttled".
  int Admitted = 0;
  for (bool Ok : PatA)
    Admitted += Ok ? 1 : 0;
  EXPECT_GT(Admitted, 8);
  EXPECT_LT(Admitted, 32);
  // First request is always admitted regardless of the seeded stagger.
  for (uint64_t Seed : {1ull, 99ull, 0xdeadull}) {
    TokenBucket Fresh(P, Seed);
    EXPECT_TRUE(Fresh.tryAcquire(0));
  }
}

TEST(CircuitBreaker, TripCooldownProbeRecoverCycle) {
  CircuitBreakerPolicy P;
  P.WindowSize = 4;
  P.MinSamples = 2;
  P.FailureThreshold = 0.5;
  P.CooldownRejections = 2;
  CircuitBreaker Br(P);

  using D = CircuitBreaker::Decision;
  // Two failures trip the breaker.
  EXPECT_EQ(Br.onDispatch(), D::Admit);
  Br.onOutcome(false);
  EXPECT_EQ(Br.onDispatch(), D::Admit);
  Br.onOutcome(false);
  EXPECT_EQ(Br.state(), BreakerState::Open);
  EXPECT_EQ(Br.trips(), 1u);
  // Cooldown: two rejections, then a half-open probe.
  EXPECT_EQ(Br.onDispatch(), D::Reject);
  EXPECT_EQ(Br.onDispatch(), D::Reject);
  EXPECT_EQ(Br.onDispatch(), D::Probe);
  EXPECT_EQ(Br.state(), BreakerState::HalfOpen);
  // Probe fails: re-open (counted as a trip), cooldown restarts.
  Br.onOutcome(false);
  EXPECT_EQ(Br.state(), BreakerState::Open);
  EXPECT_EQ(Br.trips(), 2u);
  EXPECT_EQ(Br.onDispatch(), D::Reject);
  EXPECT_EQ(Br.onDispatch(), D::Reject);
  EXPECT_EQ(Br.onDispatch(), D::Probe);
  // Probe succeeds: closed again, window cleared.
  Br.onOutcome(true);
  EXPECT_EQ(Br.state(), BreakerState::Closed);
  EXPECT_EQ(Br.probes(), 2u);
  EXPECT_EQ(Br.recoveries(), 1u);
  // One failure after recovery must not re-trip (window was cleared).
  EXPECT_EQ(Br.onDispatch(), D::Admit);
  Br.onOutcome(false);
  EXPECT_EQ(Br.state(), BreakerState::Closed);
}

//===----------------------------------------------------------------------===//
// Registration and admission control (PlainBackend: fast)
//===----------------------------------------------------------------------===//

TEST(Server, RegistrationValidatesTenantsAndKeys) {
  TensorCircuit Circ = smallCircuit();
  PlainBackend Plain(10);
  TenantOptions TO;
  TO.Scales = plainScales();

  InferenceServer<PlainBackend> Server;
  EXPECT_EQ(Server.registerTenant("alice", Plain, Circ, TO), 1u);
  // Duplicate id is a typed misuse.
  EXPECT_THROW(Server.registerTenant("alice", Plain, Circ, TO),
               InvalidArgumentError);
  // Key/circuit mismatch: 8 slots cannot hold an 8x8 image's layout.
  PlainBackend Tiny(4);
  try {
    Server.registerTenant("bob", Tiny, Circ, TO);
    FAIL() << "expected a typed key/circuit mismatch";
  } catch (const ChetError &E) {
    EXPECT_TRUE(E.code() == ErrorCode::LayoutMismatch ||
                E.code() == ErrorCode::InfeasibleCircuit ||
                E.code() == ErrorCode::InvalidArgument)
        << errorCodeName(E.code());
  }
  // Unknown tenants are rejected per request, not thrown.
  Tensor3 Image = randomImageFor(Circ, 1);
  TensorLayout L = circuitInputLayout(Circ, TO.Policy, Plain.slotCount());
  auto Enc = encryptTensor(Plain, Image, L, TO.Scales);
  RequestTicket T = Server.submit("mallory", std::move(Enc));
  const ServerResponse &R = T.wait();
  EXPECT_EQ(R.Status, RequestStatus::Rejected);
  EXPECT_EQ(R.Code, ErrorCode::UnknownTenant);
  EXPECT_EQ(R.Class, FaultClass::Permanent);
  EXPECT_EQ(Server.report().RejectedUnknownTenant, 1u);
}

TEST(Server, StaleKeysRejectedAtSubmitAndAcrossRotation) {
  TensorCircuit Circ = smallCircuit();
  PlainBackend KeysV1(10), KeysV2(10);
  TenantOptions TO;
  TO.Scales = plainScales();
  TensorLayout L = circuitInputLayout(Circ, TO.Policy, KeysV1.slotCount());
  Tensor3 Image = randomImageFor(Circ, 2);

  ServerConfig Cfg;
  Cfg.Lanes = 1;
  InferenceServer<PlainBackend> Server(Cfg);
  Server.registerTenant("alice", KeysV1, Circ, TO);

  // Pinning a wrong epoch rejects immediately.
  RequestOptions Pinned;
  Pinned.KeyEpoch = 7;
  RequestTicket Bad =
      Server.submit("alice", encryptTensor(KeysV1, Image, L, TO.Scales),
                    Pinned);
  EXPECT_EQ(Bad.wait().Code, ErrorCode::StaleKey);

  // A request queued before a key rotation is rejected at dispatch: its
  // ciphertexts were produced under the old keys.
  Server.pause();
  RequestTicket Queued =
      Server.submit("alice", encryptTensor(KeysV1, Image, L, TO.Scales));
  EXPECT_EQ(Server.rotateTenantKeys("alice", KeysV2), 2u);
  EXPECT_EQ(Server.keyEpoch("alice"), 2u);
  Server.resume();
  const ServerResponse &R = Queued.wait();
  EXPECT_EQ(R.Status, RequestStatus::Rejected);
  EXPECT_EQ(R.Code, ErrorCode::StaleKey);

  // A fresh request under the new epoch completes.
  RequestTicket Fresh =
      Server.submit("alice", encryptTensor(KeysV2, Image, L, TO.Scales));
  EXPECT_EQ(Fresh.wait().Status, RequestStatus::Completed);

  ServerReport Rep = Server.shutdown();
  ASSERT_EQ(Rep.Tenants.size(), 1u);
  EXPECT_EQ(Rep.Tenants[0].RejectedStaleKey, 2u);
  EXPECT_EQ(Rep.Tenants[0].Completed, 1u);
}

TEST(Server, OverloadShedsNewestFirstWithTypedRejections) {
  TensorCircuit Circ = smallCircuit();
  PlainBackend Plain(10);
  TenantOptions TO;
  TO.Scales = plainScales();
  TensorLayout L = circuitInputLayout(Circ, TO.Policy, Plain.slotCount());
  Tensor3 Image = randomImageFor(Circ, 3);

  ServerConfig Cfg;
  Cfg.Lanes = 1;
  Cfg.QueueHighWater = 3;
  InferenceServer<PlainBackend> Server(Cfg);
  Server.registerTenant("alice", Plain, Circ, TO);

  Server.pause(); // build a deterministic backlog
  std::vector<RequestTicket> Tickets;
  for (int I = 0; I < 5; ++I)
    Tickets.push_back(
        Server.submit("alice", encryptTensor(Plain, Image, L, TO.Scales)));
  // The two newest submissions were shed, already resolved.
  for (int I = 3; I < 5; ++I) {
    EXPECT_TRUE(Tickets[size_t(I)].done());
    const ServerResponse &R = Tickets[size_t(I)].wait();
    EXPECT_EQ(R.Status, RequestStatus::Rejected);
    EXPECT_EQ(R.Code, ErrorCode::ServerOverloaded);
    EXPECT_EQ(R.Class, FaultClass::Transient) << "overload is retryable";
    EXPECT_FALSE(R.Message.empty());
  }
  Server.resume();
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(Tickets[size_t(I)].wait().Status, RequestStatus::Completed);

  ServerReport Rep = Server.shutdown();
  EXPECT_EQ(Rep.QueueHighWater, 3u);
  ASSERT_EQ(Rep.Tenants.size(), 1u);
  EXPECT_EQ(Rep.Tenants[0].RejectedOverload, 2u);
  EXPECT_EQ(Rep.Tenants[0].Completed, 3u);
}

TEST(Server, TokenBucketThrottlingIsSeededDeterministic) {
  TensorCircuit Circ = smallCircuit();
  PlainBackend Plain(10);
  TenantOptions TO;
  TO.Scales = plainScales();
  TokenBucketPolicy Bucket;
  Bucket.RatePerTick = 0.34;
  Bucket.Burst = 1.0;
  TO.Bucket = Bucket;
  TensorLayout L = circuitInputLayout(Circ, TO.Policy, Plain.slotCount());
  Tensor3 Image = randomImageFor(Circ, 4);

  auto RunSchedule = [&](uint64_t Seed) {
    ServerConfig Cfg;
    Cfg.Lanes = 1;
    Cfg.Seed = Seed;
    InferenceServer<PlainBackend> Server(Cfg);
    Server.registerTenant("alice", Plain, Circ, TO);
    Server.pause();
    std::vector<RequestTicket> Tickets;
    for (int I = 0; I < 9; ++I)
      Tickets.push_back(
          Server.submit("alice", encryptTensor(Plain, Image, L, TO.Scales)));
    Server.resume();
    std::vector<RequestStatus> Statuses;
    for (RequestTicket &T : Tickets)
      Statuses.push_back(T.wait().Status);
    ServerReport Rep = Server.shutdown();
    return std::make_pair(Statuses, Rep.Tenants.at(0).RejectedThrottled);
  };

  auto [StatusesA, ThrottledA] = RunSchedule(0x7e57);
  auto [StatusesB, ThrottledB] = RunSchedule(0x7e57);
  EXPECT_EQ(StatusesA, StatusesB); // same seed -> same admission pattern
  EXPECT_EQ(ThrottledA, ThrottledB);
  EXPECT_GT(ThrottledA, 0u); // rate 0.34 must throttle a 9-burst
  EXPECT_EQ(StatusesA[0], RequestStatus::Completed) << "first always admitted";
}

//===----------------------------------------------------------------------===//
// Per-tenant fault isolation: breaker determinism at every lane count
//===----------------------------------------------------------------------===//

TEST(Server, BreakerTripsAndHalfOpenRecoversDeterministically) {
  TensorCircuit Circ = smallCircuit();
  TenantOptions TO;
  TO.Scales = plainScales();
  Tensor3 Image = randomImageFor(Circ, 5);

  for (unsigned Lanes : {1u, 2u, 8u}) {
    PlainBackend Plain(10);
    FaultPlan Plan;
    Plan.Seed = 0xb4ea3;
    Plan.TransientRate = 1.0; // every request's first op faults ...
    Plan.MaxTransientFaults = 3; // ... until the third fault, then heals
    PlainChaos Chaos(Plain, Plan);
    Chaos.setFaultScope("tenant:alice");
    TensorLayout L = circuitInputLayout(Circ, TO.Policy, Chaos.slotCount());

    ServerConfig Cfg;
    Cfg.Lanes = Lanes;
    Cfg.Retry = fastRetry(/*MaxAttempts=*/1); // a fault fails the request
    Cfg.Breaker.WindowSize = 4;
    Cfg.Breaker.MinSamples = 2;
    Cfg.Breaker.FailureThreshold = 0.5;
    Cfg.Breaker.CooldownRejections = 2;
    InferenceServer<PlainChaos> Server(Cfg);
    Server.registerTenant("alice", Chaos, Circ, TO);

    Server.pause();
    std::vector<RequestTicket> Tickets;
    for (int I = 0; I < 10; ++I)
      Tickets.push_back(Server.submit(
          "alice", retag<PlainChaos>(
                       encryptTensor(Plain, Image, L, TO.Scales))));
    Server.resume();
    for (RequestTicket &T : Tickets)
      T.wait();

    // Expected serial schedule: fail, fail (trip), reject, reject,
    // probe-fail (re-trip), reject, reject, probe-ok (recover), ok, ok.
    ServerReport Rep = Server.shutdown();
    ASSERT_EQ(Rep.Tenants.size(), 1u);
    const TenantReport &T = Rep.Tenants[0];
    EXPECT_EQ(T.Failed, 3u) << "lanes=" << Lanes;
    EXPECT_EQ(T.Completed, 3u) << "lanes=" << Lanes;
    EXPECT_EQ(T.RejectedBreaker, 4u) << "lanes=" << Lanes;
    EXPECT_EQ(T.BreakerTrips, 2u) << "lanes=" << Lanes;
    EXPECT_EQ(T.BreakerProbes, 2u) << "lanes=" << Lanes;
    EXPECT_EQ(T.BreakerRecoveries, 1u) << "lanes=" << Lanes;
    EXPECT_EQ(T.Breaker, BreakerState::Closed) << "lanes=" << Lanes;
    ASSERT_EQ(Chaos.stats().Sites.size(), 3u);
    for (const FaultSite &S : Chaos.stats().Sites)
      EXPECT_EQ(S.Scope, "tenant:alice");
  }
}

TEST(Server, OpenBreakerDoesNotStarveHealthyTenants) {
  TensorCircuit Circ = smallCircuit();
  TenantOptions TO;
  TO.Scales = plainScales();
  Tensor3 Image = randomImageFor(Circ, 6);

  PlainBackend Healthy(10);
  PlainBackend BrokenInner(10);
  FaultPlan Always;
  Always.TransientRate = 1.0; // never heals
  PlainChaos Broken(BrokenInner, Always);
  Broken.setFaultScope("tenant:broken");

  // Both tenants live in one server; the healthy tenant uses the chaos
  // type too (with a no-fault plan) so both share a backend type.
  FaultPlan None;
  PlainChaos HealthyChaos(Healthy, None);
  HealthyChaos.setFaultScope("tenant:healthy");

  ServerConfig Cfg;
  Cfg.Lanes = 2;
  Cfg.Retry = fastRetry(1);
  Cfg.Breaker.WindowSize = 4;
  Cfg.Breaker.MinSamples = 2;
  Cfg.Breaker.FailureThreshold = 0.5;
  Cfg.Breaker.CooldownRejections = 100; // stays open for the whole test
  InferenceServer<PlainChaos> Server(Cfg);
  TensorLayout L =
      circuitInputLayout(Circ, TO.Policy, HealthyChaos.slotCount());
  Server.registerTenant("healthy", HealthyChaos, Circ, TO);
  Server.registerTenant("broken", Broken, Circ, TO);

  Server.pause();
  std::vector<RequestTicket> HealthyTickets, BrokenTickets;
  for (int I = 0; I < 8; ++I) {
    BrokenTickets.push_back(Server.submit(
        "broken",
        retag<PlainChaos>(encryptTensor(BrokenInner, Image, L, TO.Scales))));
    HealthyTickets.push_back(Server.submit(
        "healthy",
        retag<PlainChaos>(encryptTensor(Healthy, Image, L, TO.Scales))));
  }
  Server.resume();
  for (RequestTicket &T : HealthyTickets)
    EXPECT_EQ(T.wait().Status, RequestStatus::Completed);
  size_t BrokenFailed = 0, BrokenRejected = 0;
  for (RequestTicket &T : BrokenTickets) {
    const ServerResponse &R = T.wait();
    ASSERT_NE(R.Status, RequestStatus::Completed);
    if (R.Status == RequestStatus::Failed)
      ++BrokenFailed;
    else
      ++BrokenRejected;
  }
  EXPECT_EQ(BrokenFailed, 2u) << "exactly the two pre-trip requests run";
  EXPECT_EQ(BrokenRejected, 6u);

  ServerReport Rep = Server.shutdown();
  for (const TenantReport &T : Rep.Tenants) {
    if (T.Tenant == "healthy") {
      EXPECT_EQ(T.Completed, 8u);
      EXPECT_EQ(T.BreakerTrips, 0u);
    } else {
      EXPECT_EQ(T.BreakerTrips, 1u);
      EXPECT_EQ(T.Breaker, BreakerState::Open);
    }
  }
}

//===----------------------------------------------------------------------===//
// Deadlines: server cap bounds the session; queued budgets expire
//===----------------------------------------------------------------------===//

TEST(Server, ServerDeadlineCapsEveryRequest) {
  TensorCircuit Circ = smallCircuit();
  PlainBackend Plain(10);
  TenantOptions TO;
  TO.Scales = plainScales();
  TensorLayout L = circuitInputLayout(Circ, TO.Policy, Plain.slotCount());
  Tensor3 Image = randomImageFor(Circ, 7);

  ServerConfig Cfg;
  Cfg.Lanes = 1;
  Cfg.MaxRequestSeconds = 1e-9; // expires at the first node boundary
  InferenceServer<PlainBackend> Server(Cfg);
  Server.registerTenant("alice", Plain, Circ, TO);
  RequestTicket T =
      Server.submit("alice", encryptTensor(Plain, Image, L, TO.Scales));
  const ServerResponse &R = T.wait();
  EXPECT_EQ(R.Status, RequestStatus::Failed);
  EXPECT_EQ(R.Code, ErrorCode::DeadlineExceeded);
  EXPECT_EQ(R.Class, FaultClass::Deadline);
  EXPECT_TRUE(R.Session.DeadlineExpired);
}

TEST(Server, QueuedRequestBudgetExpiresWithoutOccupyingALane) {
  TensorCircuit Circ = smallCircuit();
  PlainBackend Plain(10);
  TenantOptions TO;
  TO.Scales = plainScales();
  TensorLayout L = circuitInputLayout(Circ, TO.Policy, Plain.slotCount());
  Tensor3 Image = randomImageFor(Circ, 8);

  ServerConfig Cfg;
  Cfg.Lanes = 1;
  InferenceServer<PlainBackend> Server(Cfg);
  Server.registerTenant("alice", Plain, Circ, TO);

  Server.pause();
  RequestOptions Tight;
  Tight.TimeBudgetSeconds = 1e-6;
  RequestTicket Doomed = Server.submit(
      "alice", encryptTensor(Plain, Image, L, TO.Scales), Tight);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Server.resume();
  const ServerResponse &R = Doomed.wait();
  EXPECT_EQ(R.Status, RequestStatus::Rejected);
  EXPECT_EQ(R.Code, ErrorCode::DeadlineExceeded);
  EXPECT_EQ(R.Session.NodesExecuted, 0) << "never dispatched to a lane";
  ServerReport Rep = Server.shutdown();
  EXPECT_EQ(Rep.Tenants.at(0).RejectedDeadline, 1u);
}

//===----------------------------------------------------------------------===//
// Graceful drain
//===----------------------------------------------------------------------===//

TEST(Server, GracefulDrainCompletesOrShedsWithStructuredReports) {
  TensorCircuit Circ = smallCircuit();
  PlainBackend Plain(10);
  TenantOptions TO;
  TO.Scales = plainScales();
  MemoryCheckpointStore Store;
  TO.Store = &Store;
  TensorLayout L = circuitInputLayout(Circ, TO.Policy, Plain.slotCount());
  Tensor3 Image = randomImageFor(Circ, 9);

  ServerConfig Cfg;
  Cfg.Lanes = 1;
  Cfg.QueueHighWater = 64;
  Cfg.Checkpoint = CheckpointPolicy::everyNode();
  InferenceServer<PlainBackend> Server(Cfg);
  Server.registerTenant("alice", Plain, Circ, TO);

  Server.pause();
  std::vector<RequestTicket> Tickets;
  for (int I = 0; I < 6; ++I)
    Tickets.push_back(
        Server.submit("alice", encryptTensor(Plain, Image, L, TO.Scales)));
  // A tiny drain budget: whatever has not started when it expires is
  // shed with a typed, structured rejection.
  ServerReport Rep = Server.shutdown(/*DrainBudgetSeconds=*/1e-6);
  EXPECT_TRUE(Rep.ShutDown);

  size_t Completed = 0, Shed = 0;
  for (RequestTicket &T : Tickets) {
    const ServerResponse &R = T.wait();
    if (R.Status == RequestStatus::Completed) {
      ++Completed;
    } else {
      ASSERT_EQ(R.Status, RequestStatus::Rejected);
      EXPECT_EQ(R.Code, ErrorCode::ServerShutdown);
      EXPECT_EQ(R.Class, FaultClass::Transient) << "resubmission can succeed";
      EXPECT_NE(R.Message.find("resubmit"), std::string::npos);
      ++Shed;
    }
  }
  EXPECT_EQ(Completed + Shed, 6u) << "no work silently lost";
  EXPECT_EQ(Rep.DrainRejected, Shed);

  // Post-shutdown submissions are typed rejections, and shutdown() is
  // idempotent.
  RequestTicket Late =
      Server.submit("alice", encryptTensor(Plain, Image, L, TO.Scales));
  EXPECT_EQ(Late.wait().Code, ErrorCode::ServerShutdown);
  EXPECT_TRUE(Server.shutdown().ShutDown);
}

//===----------------------------------------------------------------------===//
// Chaos soak: byte-identity of completed responses at 1/2/8 lanes
//===----------------------------------------------------------------------===//

struct SoakTenant {
  std::string Id;
  FaultPlan Plan;
  std::vector<Tensor3> Images;
};

/// Reference bytes per request: a fault-free single-session run through
/// the same integrity stack.
template <typename Raw, typename Integ>
std::vector<std::vector<ByteBuffer>>
referenceBytes(Raw &RawBackend, const TensorCircuit &Circ,
               const CompiledCircuit &C, const std::vector<Tensor3> &Images) {
  Integ IntegB(RawBackend);
  TensorLayout L = circuitInputLayout(Circ, C.Policy, IntegB.slotCount());
  std::vector<std::vector<ByteBuffer>> Out;
  for (const Tensor3 &Image : Images) {
    auto Enc = encryptTensor(IntegB, Image, L, C.Scales);
    auto Res = evaluateCircuit(IntegB, Circ, Enc, C.Scales, C.Policy);
    Out.push_back(serializeAll(Res.Cts));
  }
  return Out;
}

TEST(Server, ChaosSoakByteIdenticalAcrossLanesRns) {
  PoolGuard Guard;
  TensorCircuit Circ = smallCircuit();
  CompiledCircuit C = compileSmall(Circ, SchemeKind::RnsCkks);

  std::vector<SoakTenant> Tenants(2);
  Tenants[0].Id = "transient";
  Tenants[0].Plan.Seed = 0x7a1;
  Tenants[0].Plan.TransientRate = 0.01;
  Tenants[0].Plan.MaxTransientFaults = 4;
  Tenants[1].Id = "bitflip";
  Tenants[1].Plan.Seed = 0x7a2;
  Tenants[1].Plan.BitFlipRate = 0.004;
  Tenants[1].Plan.MaxBitFlips = 2;
  for (size_t I = 0; I < Tenants.size(); ++I)
    for (uint64_t S = 0; S < 3; ++S)
      Tenants[I].Images.push_back(randomImageFor(Circ, 100 + 10 * I + S));

  // Fault-free references (one fresh seeded backend per tenant).
  std::vector<std::vector<std::vector<ByteBuffer>>> Refs;
  for (SoakTenant &T : Tenants) {
    RnsCkksBackend Raw = makeRnsBackend(C, BackendSeed);
    Refs.push_back(referenceBytes<RnsCkksBackend, RnsInteg>(Raw, Circ, C,
                                                            T.Images));
  }

  std::vector<TenantReport> PrevReports;
  for (unsigned Lanes : {1u, 2u, 8u}) {
    // Fresh backends per lane count so each run sees the same seeded
    // fault schedule from the start.
    std::vector<std::unique_ptr<RnsCkksBackend>> Raws;
    std::vector<std::unique_ptr<RnsInteg>> Integs;
    std::vector<std::unique_ptr<RnsChaos>> Chaoses;
    ServerConfig Cfg;
    Cfg.Lanes = Lanes;
    Cfg.Retry = fastRetry(4);
    Cfg.Checkpoint = CheckpointPolicy::everyN(2);
    Cfg.IntegrityCheckEveryNodes = 1;
    InferenceServer<RnsChaos> Server(Cfg);
    std::vector<std::unique_ptr<MemoryCheckpointStore>> Stores;

    TensorLayout L;
    for (SoakTenant &T : Tenants) {
      Raws.push_back(std::make_unique<RnsCkksBackend>(
          makeRnsBackend(C, BackendSeed)));
      Integs.push_back(std::make_unique<RnsInteg>(*Raws.back()));
      Chaoses.push_back(std::make_unique<RnsChaos>(*Integs.back(), T.Plan));
      Chaoses.back()->setFaultScope("tenant:" + T.Id);
      Stores.push_back(std::make_unique<MemoryCheckpointStore>());
      TenantOptions TO;
      TO.Scales = C.Scales;
      TO.Policy = C.Policy;
      TO.Store = Stores.back().get();
      Server.registerTenant(T.Id, *Chaoses.back(), Circ, TO);
      L = circuitInputLayout(Circ, C.Policy, Chaoses.back()->slotCount());
    }

    // Interleaved submission schedule (round-robin across tenants).
    std::vector<std::pair<size_t, RequestTicket>> Tickets;
    for (size_t R = 0; R < 3; ++R)
      for (size_t TI = 0; TI < Tenants.size(); ++TI) {
        auto Enc = retag<RnsChaos>(encryptTensor(
            *Integs[TI], Tenants[TI].Images[R], L, C.Scales));
        Tickets.emplace_back(
            TI, Server.submit(Tenants[TI].Id, std::move(Enc)));
      }

    // Every response completes and matches the fault-free bytes.
    std::vector<size_t> Seen(Tenants.size(), 0);
    for (auto &[TI, Ticket] : Tickets) {
      const ServerResponse &R = Ticket.wait();
      ASSERT_EQ(R.Status, RequestStatus::Completed)
          << "lanes=" << Lanes << " tenant=" << Tenants[TI].Id << ": "
          << R.Message;
      expectSameBytes(Refs[TI][Seen[TI]], R.Output, "chaos soak response");
      ++Seen[TI];
    }

    ServerReport Rep = Server.shutdown();
    EXPECT_EQ(Rep.Completed, 6u) << "lanes=" << Lanes;
    EXPECT_EQ(Rep.Failed, 0u) << "lanes=" << Lanes;
    // Counters are lane-count-invariant (per-tenant serial execution).
    if (!PrevReports.empty()) {
      for (size_t I = 0; I < Rep.Tenants.size(); ++I) {
        EXPECT_EQ(Rep.Tenants[I].Retries, PrevReports[I].Retries)
            << "lanes=" << Lanes;
        EXPECT_EQ(Rep.Tenants[I].Restarts, PrevReports[I].Restarts)
            << "lanes=" << Lanes;
        EXPECT_EQ(Rep.Tenants[I].Completed, PrevReports[I].Completed);
      }
    }
    PrevReports = Rep.Tenants;
    // The chaos plans actually fired (faults were injected and healed).
    EXPECT_GT(Chaoses[0]->stats().TransientFaults, 0);
    EXPECT_GT(Chaoses[1]->stats().BitFlips, 0);
  }
}

TEST(Server, ChaosSoakByteIdenticalAcrossLanesBig) {
  PoolGuard Guard;
  TensorCircuit Circ = smallCircuit();
  CompiledCircuit C = compileSmall(Circ, SchemeKind::BigCkks);

  SoakTenant T;
  T.Id = "mixed";
  T.Plan.Seed = 0x9b1;
  T.Plan.TransientRate = 0.01;
  T.Plan.MaxTransientFaults = 3;
  T.Plan.BitFlipRate = 0.002;
  T.Plan.MaxBitFlips = 1;
  T.Images = {randomImageFor(Circ, 200), randomImageFor(Circ, 201)};

  BigCkksBackend RefRaw = makeBigBackend(C, BackendSeed);
  auto Refs =
      referenceBytes<BigCkksBackend, BigInteg>(RefRaw, Circ, C, T.Images);

  for (unsigned Lanes : {1u, 8u}) {
    BigCkksBackend Raw = makeBigBackend(C, BackendSeed);
    BigInteg Integ(Raw);
    BigChaos Chaos(Integ, T.Plan);
    Chaos.setFaultScope("tenant:" + T.Id);
    MemoryCheckpointStore Store;

    ServerConfig Cfg;
    Cfg.Lanes = Lanes;
    Cfg.Retry = fastRetry(4);
    Cfg.Checkpoint = CheckpointPolicy::everyN(2);
    Cfg.IntegrityCheckEveryNodes = 1;
    InferenceServer<BigChaos> Server(Cfg);
    TenantOptions TO;
    TO.Scales = C.Scales;
    TO.Policy = C.Policy;
    TO.Store = &Store;
    Server.registerTenant(T.Id, Chaos, Circ, TO);
    TensorLayout L = circuitInputLayout(Circ, C.Policy, Chaos.slotCount());

    std::vector<RequestTicket> Tickets;
    for (const Tensor3 &Image : T.Images)
      Tickets.push_back(Server.submit(
          T.Id, retag<BigChaos>(encryptTensor(Integ, Image, L, C.Scales))));
    for (size_t I = 0; I < Tickets.size(); ++I) {
      const ServerResponse &R = Tickets[I].wait();
      ASSERT_EQ(R.Status, RequestStatus::Completed)
          << "lanes=" << Lanes << ": " << R.Message;
      expectSameBytes(Refs[I], R.Output, "big-ckks soak response");
    }
    Server.shutdown();
  }
}

//===----------------------------------------------------------------------===//
// Concurrent sessions sharing the global pool and a PlaintextCache
// (satellite: must be data-race-free under the TSan CI job)
//===----------------------------------------------------------------------===//

TEST(Server, ConcurrentSessionsSharePoolAndCacheBitIdentical) {
  PoolGuard Guard;
  TensorCircuit Circ = smallCircuit();
  CompiledCircuit C = compileSmall(Circ, SchemeKind::RnsCkks);
  RnsCkksBackend Backend = makeRnsBackend(C, BackendSeed);
  TensorLayout L = circuitInputLayout(Circ, C.Policy, Backend.slotCount());
  Tensor3 Image = randomImageFor(Circ, 77);
  // Encrypt once on the main thread (encryption draws from the backend's
  // Prng; evaluation does not).
  auto Enc = encryptTensor(Backend, Image, L, C.Scales);
  auto Ref = evaluateCircuit(Backend, Circ, Enc, C.Scales, C.Policy);
  std::vector<ByteBuffer> RefBytes = serializeAll(Ref.Cts);

  for (unsigned PoolLanes : {1u, 2u, 8u}) {
    setGlobalThreadCount(PoolLanes);
    EncodedPlaintextCache<RnsCkksBackend> SharedCache;
    constexpr int Sessions = 4;
    std::vector<std::vector<ByteBuffer>> Results(Sessions);
    std::vector<std::string> Errors(Sessions);
    std::vector<std::thread> Threads;
    for (int S = 0; S < Sessions; ++S)
      Threads.emplace_back([&, S] {
        try {
          InferenceSession<RnsCkksBackend> Sess(Backend, Circ, {});
          auto Out =
              Sess.run(Enc, C.Scales, C.Policy, FcAlgorithm::Auto,
                       &SharedCache);
          Results[size_t(S)] = serializeAll(Out.Cts);
        } catch (const std::exception &E) {
          Errors[size_t(S)] = E.what();
        }
      });
    for (std::thread &T : Threads)
      T.join();
    for (int S = 0; S < Sessions; ++S) {
      EXPECT_EQ(Errors[size_t(S)], "") << "pool=" << PoolLanes;
      expectSameBytes(RefBytes, Results[size_t(S)],
                      "concurrent session output");
    }
  }
}

//===----------------------------------------------------------------------===//
// Report rendering
//===----------------------------------------------------------------------===//

TEST(Server, ReportRendersEveryTenantAndPercentiles) {
  EXPECT_EQ(latencyPercentile({}, 50.0), 0.0);
  EXPECT_EQ(latencyPercentile({3.0, 1.0, 2.0}, 50.0), 2.0);
  EXPECT_EQ(latencyPercentile({3.0, 1.0, 2.0}, 99.0), 3.0);

  TensorCircuit Circ = smallCircuit();
  PlainBackend Plain(10);
  TenantOptions TO;
  TO.Scales = plainScales();
  TensorLayout L = circuitInputLayout(Circ, TO.Policy, Plain.slotCount());
  Tensor3 Image = randomImageFor(Circ, 11);

  InferenceServer<PlainBackend> Server;
  Server.registerTenant("alice", Plain, Circ, TO);
  Server.submit("alice", encryptTensor(Plain, Image, L, TO.Scales)).wait();
  ServerReport Rep = Server.shutdown();
  std::string S = Rep.str();
  EXPECT_NE(S.find("tenant 'alice'"), std::string::npos);
  EXPECT_NE(S.find("completed=1"), std::string::npos);
  EXPECT_NE(S.find("p50="), std::string::npos);
  ASSERT_EQ(Rep.Tenants.size(), 1u);
  EXPECT_GT(Rep.Tenants[0].P50LatencySeconds, 0.0);
  EXPECT_GE(Rep.Tenants[0].P99LatencySeconds,
            Rep.Tenants[0].P50LatencySeconds);
}

} // namespace
