//===- test_ntt.cpp - Unit tests for the negacyclic NTT -------------------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "math/Ntt.h"

#include "math/PrimeGen.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <vector>

using namespace chet;

namespace {

// Schoolbook negacyclic convolution: C = A * B mod (X^N + 1, q).
std::vector<uint64_t> refNegacyclicMul(const std::vector<uint64_t> &A,
                                       const std::vector<uint64_t> &B,
                                       const Modulus &Q) {
  size_t N = A.size();
  std::vector<uint64_t> C(N, 0);
  for (size_t I = 0; I < N; ++I) {
    for (size_t J = 0; J < N; ++J) {
      uint64_t Prod = Q.mulMod(A[I], B[J]);
      size_t K = I + J;
      if (K < N)
        C[K] = Q.addMod(C[K], Prod);
      else
        C[K - N] = Q.subMod(C[K - N], Prod); // X^N = -1
    }
  }
  return C;
}

class NttParamTest : public ::testing::TestWithParam<int> {};

TEST_P(NttParamTest, ForwardInverseRoundTrip) {
  int LogN = GetParam();
  size_t N = size_t(1) << LogN;
  uint64_t Prime = generateNttPrimes(50, LogN, 1)[0];
  NttTables Tables(LogN, Modulus(Prime));
  Prng Rng(LogN);
  std::vector<uint64_t> Data(N), Original(N);
  for (size_t I = 0; I < N; ++I)
    Data[I] = Original[I] = Rng.nextBounded(Prime);
  Tables.forward(Data.data());
  Tables.inverse(Data.data());
  EXPECT_EQ(Data, Original);
}

TEST_P(NttParamTest, PointwiseMulIsNegacyclicConvolution) {
  int LogN = GetParam();
  if (LogN > 8)
    GTEST_SKIP() << "schoolbook reference too slow beyond N=256";
  size_t N = size_t(1) << LogN;
  uint64_t Prime = generateNttPrimes(50, LogN, 1)[0];
  Modulus Q(Prime);
  NttTables Tables(LogN, Q);
  Prng Rng(100 + LogN);
  std::vector<uint64_t> A(N), B(N);
  for (size_t I = 0; I < N; ++I) {
    A[I] = Rng.nextBounded(Prime);
    B[I] = Rng.nextBounded(Prime);
  }
  std::vector<uint64_t> Expected = refNegacyclicMul(A, B, Q);

  std::vector<uint64_t> AHat = A, BHat = B;
  Tables.forward(AHat.data());
  Tables.forward(BHat.data());
  std::vector<uint64_t> CHat(N);
  for (size_t I = 0; I < N; ++I)
    CHat[I] = Q.mulMod(AHat[I], BHat[I]);
  Tables.inverse(CHat.data());
  EXPECT_EQ(CHat, Expected);
}

TEST_P(NttParamTest, TransformIsLinear) {
  int LogN = GetParam();
  size_t N = size_t(1) << LogN;
  uint64_t Prime = generateNttPrimes(50, LogN, 1)[0];
  Modulus Q(Prime);
  NttTables Tables(LogN, Q);
  Prng Rng(200 + LogN);
  std::vector<uint64_t> A(N), B(N), Sum(N);
  for (size_t I = 0; I < N; ++I) {
    A[I] = Rng.nextBounded(Prime);
    B[I] = Rng.nextBounded(Prime);
    Sum[I] = Q.addMod(A[I], B[I]);
  }
  Tables.forward(A.data());
  Tables.forward(B.data());
  Tables.forward(Sum.data());
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Sum[I], Q.addMod(A[I], B[I]));
}

INSTANTIATE_TEST_SUITE_P(Sizes, NttParamTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 10, 12, 13));

TEST(Ntt, MultiplicationByXShiftsNegacyclically) {
  // a(X) * X rotates coefficients with a sign flip at the wrap.
  int LogN = 4;
  size_t N = 16;
  uint64_t Prime = generateNttPrimes(50, LogN, 1)[0];
  Modulus Q(Prime);
  NttTables Tables(LogN, Q);
  Prng Rng(55);
  std::vector<uint64_t> A(N), X(N, 0);
  for (size_t I = 0; I < N; ++I)
    A[I] = Rng.nextBounded(Prime);
  X[1] = 1;
  std::vector<uint64_t> AHat = A, XHat = X;
  Tables.forward(AHat.data());
  Tables.forward(XHat.data());
  for (size_t I = 0; I < N; ++I)
    AHat[I] = Q.mulMod(AHat[I], XHat[I]);
  Tables.inverse(AHat.data());
  EXPECT_EQ(AHat[0], Q.negMod(A[N - 1]));
  for (size_t I = 1; I < N; ++I)
    EXPECT_EQ(AHat[I], A[I - 1]);
}

TEST(Ntt, DifferentPrimesIndependent) {
  int LogN = 6;
  size_t N = 64;
  auto Primes = generateNttPrimes(50, LogN, 2);
  NttTables T0(LogN, Modulus(Primes[0]));
  NttTables T1(LogN, Modulus(Primes[1]));
  Prng Rng(77);
  std::vector<uint64_t> Data(N);
  for (size_t I = 0; I < N; ++I)
    Data[I] = Rng.nextBounded(Primes[1]);
  std::vector<uint64_t> Copy = Data;
  T1.forward(Copy.data());
  T1.inverse(Copy.data());
  EXPECT_EQ(Copy, Data);
  EXPECT_NE(T0.modulus().value(), T1.modulus().value());
}

} // namespace
