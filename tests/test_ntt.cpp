//===- test_ntt.cpp - Unit tests for the negacyclic NTT -------------------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "math/Ntt.h"

#include "math/PrimeGen.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

using namespace chet;

namespace {

// Schoolbook negacyclic convolution: C = A * B mod (X^N + 1, q).
std::vector<uint64_t> refNegacyclicMul(const std::vector<uint64_t> &A,
                                       const std::vector<uint64_t> &B,
                                       const Modulus &Q) {
  size_t N = A.size();
  std::vector<uint64_t> C(N, 0);
  for (size_t I = 0; I < N; ++I) {
    for (size_t J = 0; J < N; ++J) {
      uint64_t Prod = Q.mulMod(A[I], B[J]);
      size_t K = I + J;
      if (K < N)
        C[K] = Q.addMod(C[K], Prod);
      else
        C[K - N] = Q.subMod(C[K - N], Prod); // X^N = -1
    }
  }
  return C;
}

class NttParamTest : public ::testing::TestWithParam<int> {};

TEST_P(NttParamTest, ForwardInverseRoundTrip) {
  int LogN = GetParam();
  size_t N = size_t(1) << LogN;
  uint64_t Prime = generateNttPrimes(50, LogN, 1)[0];
  NttTables Tables(LogN, Modulus(Prime));
  Prng Rng(LogN);
  std::vector<uint64_t> Data(N), Original(N);
  for (size_t I = 0; I < N; ++I)
    Data[I] = Original[I] = Rng.nextBounded(Prime);
  Tables.forward(Data.data());
  Tables.inverse(Data.data());
  EXPECT_EQ(Data, Original);
}

TEST_P(NttParamTest, PointwiseMulIsNegacyclicConvolution) {
  int LogN = GetParam();
  if (LogN > 8)
    GTEST_SKIP() << "schoolbook reference too slow beyond N=256";
  size_t N = size_t(1) << LogN;
  uint64_t Prime = generateNttPrimes(50, LogN, 1)[0];
  Modulus Q(Prime);
  NttTables Tables(LogN, Q);
  Prng Rng(100 + LogN);
  std::vector<uint64_t> A(N), B(N);
  for (size_t I = 0; I < N; ++I) {
    A[I] = Rng.nextBounded(Prime);
    B[I] = Rng.nextBounded(Prime);
  }
  std::vector<uint64_t> Expected = refNegacyclicMul(A, B, Q);

  std::vector<uint64_t> AHat = A, BHat = B;
  Tables.forward(AHat.data());
  Tables.forward(BHat.data());
  std::vector<uint64_t> CHat(N);
  for (size_t I = 0; I < N; ++I)
    CHat[I] = Q.mulMod(AHat[I], BHat[I]);
  Tables.inverse(CHat.data());
  EXPECT_EQ(CHat, Expected);
}

TEST_P(NttParamTest, TransformIsLinear) {
  int LogN = GetParam();
  size_t N = size_t(1) << LogN;
  uint64_t Prime = generateNttPrimes(50, LogN, 1)[0];
  Modulus Q(Prime);
  NttTables Tables(LogN, Q);
  Prng Rng(200 + LogN);
  std::vector<uint64_t> A(N), B(N), Sum(N);
  for (size_t I = 0; I < N; ++I) {
    A[I] = Rng.nextBounded(Prime);
    B[I] = Rng.nextBounded(Prime);
    Sum[I] = Q.addMod(A[I], B[I]);
  }
  Tables.forward(A.data());
  Tables.forward(B.data());
  Tables.forward(Sum.data());
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Sum[I], Q.addMod(A[I], B[I]));
}

INSTANTIATE_TEST_SUITE_P(Sizes, NttParamTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 10, 12, 13));

TEST(Ntt, MultiplicationByXShiftsNegacyclically) {
  // a(X) * X rotates coefficients with a sign flip at the wrap.
  int LogN = 4;
  size_t N = 16;
  uint64_t Prime = generateNttPrimes(50, LogN, 1)[0];
  Modulus Q(Prime);
  NttTables Tables(LogN, Q);
  Prng Rng(55);
  std::vector<uint64_t> A(N), X(N, 0);
  for (size_t I = 0; I < N; ++I)
    A[I] = Rng.nextBounded(Prime);
  X[1] = 1;
  std::vector<uint64_t> AHat = A, XHat = X;
  Tables.forward(AHat.data());
  Tables.forward(XHat.data());
  for (size_t I = 0; I < N; ++I)
    AHat[I] = Q.mulMod(AHat[I], XHat[I]);
  Tables.inverse(AHat.data());
  EXPECT_EQ(AHat[0], Q.negMod(A[N - 1]));
  for (size_t I = 1; I < N; ++I)
    EXPECT_EQ(AHat[I], A[I - 1]);
}

TEST(Ntt, ReverseBitsMatchesBitLoop) {
  auto Reference = [](uint32_t X, int Bits) {
    uint32_t R = 0;
    for (int I = 0; I < Bits; ++I) {
      R = (R << 1) | (X & 1);
      X >>= 1;
    }
    return R;
  };
  Prng Rng(31);
  for (int Bits = 0; Bits <= 17; ++Bits)
    for (int Trial = 0; Trial < 64; ++Trial) {
      uint32_t X = static_cast<uint32_t>(Rng.nextBounded(uint64_t(1) << 20));
      EXPECT_EQ(reverseBits(X, Bits), Reference(X, Bits))
          << "x=" << X << " bits=" << Bits;
    }
  EXPECT_EQ(reverseBits(1u, 32), 0x80000000u);
}

/// Restores the process-global kernel mode on scope exit so a failing
/// assertion cannot leak scalar mode into later tests.
struct VectorizedGuard {
  bool Was = nttVectorizedEnabled();
  ~VectorizedGuard() { setNttVectorized(Was); }
};

/// (LogN, prime bits): every table size the repo uses, at the wide
/// reference width and inside the narrow packed-kernel domain.
class NttWidthTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(NttWidthTest, VectorizedMatchesScalarReferenceByteForByte) {
  auto [LogN, Bits] = GetParam();
  size_t N = size_t(1) << LogN;
  uint64_t Prime = generateNttPrimes(Bits, LogN, 1)[0];
  Modulus Q(Prime);
  NttTables Tables(LogN, Q);
  EXPECT_EQ(Tables.narrow(), Bits <= kNarrowPrimeBits);
  VectorizedGuard Guard;
  Prng Rng(300 + LogN + Bits);
  for (int Trial = 0; Trial < 4; ++Trial) {
    std::vector<uint64_t> A(N);
    for (size_t I = 0; I < N; ++I)
      A[I] = Rng.nextBounded(Prime);
    std::vector<uint64_t> Vec = A, Ref = A;

    setNttVectorized(true);
    Tables.forward(Vec.data());
    setNttVectorized(false);
    Tables.forwardScalar(Ref.data());
    ASSERT_EQ(Vec, Ref) << "forward diverged (logN=" << LogN
                        << " bits=" << Bits << ")";

    setNttVectorized(true);
    Tables.inverse(Vec.data());
    Tables.inverseScalar(Ref.data());
    ASSERT_EQ(Vec, Ref) << "inverse diverged (logN=" << LogN
                        << " bits=" << Bits << ")";
    ASSERT_EQ(Vec, A) << "round trip broke";
  }
}

TEST_P(NttWidthTest, FusedPointwiseMulInverseMatchesEagerReference) {
  auto [LogN, Bits] = GetParam();
  size_t N = size_t(1) << LogN;
  uint64_t Prime = generateNttPrimes(Bits, LogN, 1)[0];
  Modulus Q(Prime);
  NttTables Tables(LogN, Q);
  VectorizedGuard Guard;
  Prng Rng(400 + LogN + Bits);
  for (int Trial = 0; Trial < 4; ++Trial) {
    std::vector<uint64_t> A(N), B(N);
    for (size_t I = 0; I < N; ++I) {
      A[I] = Rng.nextBounded(Prime);
      B[I] = Rng.nextBounded(Prime);
    }
    // Fully reduced forward-domain operands, as mulAssign presents them.
    setNttVectorized(true);
    Tables.forward(A.data());
    Tables.forward(B.data());

    std::vector<uint64_t> Ref(N);
    for (size_t I = 0; I < N; ++I)
      Ref[I] = Q.mulMod(A[I], B[I]);
    setNttVectorized(false);
    Tables.inverseScalar(Ref.data());

    for (bool Vectorized : {true, false}) {
      setNttVectorized(Vectorized);
      std::vector<uint64_t> Out(N, ~uint64_t(0));
      Tables.pointwiseMulInverse(Out.data(), A.data(), B.data());
      ASSERT_EQ(Out, Ref) << "fused kernel diverged (logN=" << LogN
                          << " bits=" << Bits << " vectorized="
                          << Vectorized << ")";
    }
  }
}

TEST_P(NttWidthTest, PackedTransformsMatchWordTransforms) {
  auto [LogN, Bits] = GetParam();
  if (Bits > kNarrowPrimeBits)
    GTEST_SKIP() << "packed kernels exist only for narrow moduli";
  size_t N = size_t(1) << LogN;
  uint64_t Prime = generateNttPrimes(Bits, LogN, 1)[0];
  NttTables Tables(LogN, Modulus(Prime));
  VectorizedGuard Guard;
  setNttVectorized(true);
  Prng Rng(500 + LogN);
  std::vector<uint64_t> Wide(N);
  std::vector<uint32_t> Packed(N);
  for (size_t I = 0; I < N; ++I) {
    Wide[I] = Rng.nextBounded(Prime);
    Packed[I] = static_cast<uint32_t>(Wide[I]);
  }
  Tables.forward(Wide.data());
  Tables.forward32(Packed.data());
  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(Wide[I], Packed[I]) << "packed forward diverged at " << I;
  Tables.inverse(Wide.data());
  Tables.inverse32(Packed.data());
  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(Wide[I], Packed[I]) << "packed inverse diverged at " << I;
}

TEST_P(NttWidthTest, LazyIntermediatesStayBelowFourQ) {
  auto [LogN, Bits] = GetParam();
  size_t N = size_t(1) << LogN;
  uint64_t Prime = generateNttPrimes(Bits, LogN, 1)[0];
  Modulus Q(Prime);
  NttTables Tables(LogN, Q);
  const uint64_t FourQ = 4 * Prime;
  Prng Rng(600 + LogN + Bits);
  for (int Trial = 0; Trial < 4; ++Trial) {
    std::vector<uint64_t> A(N);
    for (size_t I = 0; I < N; ++I)
      A[I] = Rng.nextBounded(Prime);
    std::vector<uint64_t> Tracked = A, Plain = A;

    uint64_t FwdMax = Tables.forwardMaxLazy(Tracked.data());
    Tables.forward(Plain.data());
    ASSERT_EQ(Tracked, Plain) << "instrumented forward diverged";
    EXPECT_LT(FwdMax, FourQ)
        << "forward lazy value escaped 4q (logN=" << LogN << " bits="
        << Bits << ")";

    uint64_t InvMax = Tables.inverseMaxLazy(Tracked.data());
    Tables.inverse(Plain.data());
    ASSERT_EQ(Tracked, Plain) << "instrumented inverse diverged";
    EXPECT_LT(InvMax, FourQ)
        << "inverse lazy value escaped 4q (logN=" << LogN << " bits="
        << Bits << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndWidths, NttWidthTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 6, 8, 10, 12, 13),
                       ::testing::Values(60, 30)));

TEST(Ntt, DifferentPrimesIndependent) {
  int LogN = 6;
  size_t N = 64;
  auto Primes = generateNttPrimes(50, LogN, 2);
  NttTables T0(LogN, Modulus(Primes[0]));
  NttTables T1(LogN, Modulus(Primes[1]));
  Prng Rng(77);
  std::vector<uint64_t> Data(N);
  for (size_t I = 0; I < N; ++I)
    Data[I] = Rng.nextBounded(Primes[1]);
  std::vector<uint64_t> Copy = Data;
  T1.forward(Copy.data());
  T1.inverse(Copy.data());
  EXPECT_EQ(Copy, Data);
  EXPECT_NE(T0.modulus().value(), T1.modulus().value());
}

} // namespace
