//===- test_kernels_plain.cpp - Kernels vs the float reference -------------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises every tensor kernel on the PlainBackend (exact slot
/// arithmetic) against the independently written float reference ops, for
/// both layouts and a sweep of shapes, strides, and paddings.
///
//===----------------------------------------------------------------------===//

#include "runtime/Kernels.h"

#include "hisa/PlainBackend.h"
#include "runtime/ReferenceOps.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <tuple>

using namespace chet;

namespace {

Tensor3 randomTensor(int C, int H, int W, uint64_t Seed) {
  Tensor3 T(C, H, W);
  Prng Rng(Seed);
  for (double &V : T.Data)
    V = Rng.nextDouble(-2, 2);
  return T;
}

ConvWeights randomConv(int Cout, int Cin, int K, uint64_t Seed) {
  ConvWeights Wt(Cout, Cin, K, K);
  Prng Rng(Seed);
  for (double &V : Wt.W)
    V = Rng.nextDouble(-1, 1);
  for (double &V : Wt.Bias)
    V = Rng.nextDouble(-0.5, 0.5);
  return Wt;
}

FcWeights randomFc(int Out, int In, uint64_t Seed) {
  FcWeights Wt(Out, In);
  Prng Rng(Seed);
  for (double &V : Wt.W)
    V = Rng.nextDouble(-1, 1);
  for (double &V : Wt.Bias)
    V = Rng.nextDouble(-0.5, 0.5);
  return Wt;
}

constexpr int kLogN = 12; // 2048 slots

// (layout, Cin, Cout, H/W, K, stride, pad)
using ConvCase = std::tuple<LayoutKind, int, int, int, int, int, int>;

class ConvKernelTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvKernelTest, MatchesReference) {
  auto [Kind, Cin, Cout, HW, K, Stride, Pad] = GetParam();
  PlainBackend Backend(kLogN);
  ScaleConfig S;
  Tensor3 In = randomTensor(Cin, HW, HW, 42);
  ConvWeights Wt = randomConv(Cout, Cin, K, 43);

  TensorLayout L =
      makeInputLayout(Kind, Cin, HW, HW, /*PadPhys=*/Pad, Backend.slotCount());
  auto Enc = encryptTensor(Backend, In, L, S);
  auto Out = conv2d(Backend, Enc, Wt, Stride, Pad, S);
  Tensor3 Got = decryptTensor(Backend, Out);
  Tensor3 Want = refConv2d(In, Wt, Stride, Pad);
  ASSERT_EQ(Got.C, Want.C);
  ASSERT_EQ(Got.H, Want.H);
  ASSERT_EQ(Got.W, Want.W);
  EXPECT_LT(maxAbsDiff(Got, Want), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvKernelTest,
    ::testing::Values(
        // HW layout.
        ConvCase{LayoutKind::HW, 1, 1, 8, 3, 1, 1},
        ConvCase{LayoutKind::HW, 1, 4, 8, 3, 1, 1},
        ConvCase{LayoutKind::HW, 3, 2, 8, 3, 1, 0},
        ConvCase{LayoutKind::HW, 2, 3, 9, 5, 1, 2},
        ConvCase{LayoutKind::HW, 2, 2, 8, 3, 2, 1},
        ConvCase{LayoutKind::HW, 1, 2, 8, 1, 1, 0}, // 1x1 conv
        // CHW layout.
        ConvCase{LayoutKind::CHW, 1, 1, 8, 3, 1, 1},
        ConvCase{LayoutKind::CHW, 4, 4, 8, 3, 1, 1},
        ConvCase{LayoutKind::CHW, 3, 5, 8, 3, 1, 0},
        ConvCase{LayoutKind::CHW, 2, 3, 9, 5, 1, 2},
        ConvCase{LayoutKind::CHW, 4, 2, 8, 3, 2, 1},
        ConvCase{LayoutKind::CHW, 5, 6, 6, 1, 1, 0},
        // More channels than fit one ciphertext block set.
        ConvCase{LayoutKind::CHW, 12, 9, 8, 3, 1, 1}));

class PoolKernelTest
    : public ::testing::TestWithParam<std::tuple<LayoutKind, int, int>> {};

TEST_P(PoolKernelTest, MatchesReference) {
  auto [Kind, K, Stride] = GetParam();
  PlainBackend Backend(kLogN);
  ScaleConfig S;
  Tensor3 In = randomTensor(3, 8, 8, 7);
  TensorLayout L = makeInputLayout(Kind, 3, 8, 8, 2, Backend.slotCount());
  auto Enc = encryptTensor(Backend, In, L, S);
  auto Out = averagePool(Backend, Enc, K, Stride, S);
  Tensor3 Got = decryptTensor(Backend, Out);
  Tensor3 Want = refAveragePool(In, K, Stride);
  ASSERT_EQ(Got.H, Want.H);
  EXPECT_LT(maxAbsDiff(Got, Want), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Windows, PoolKernelTest,
    ::testing::Combine(::testing::Values(LayoutKind::HW, LayoutKind::CHW),
                       ::testing::Values(2, 3),
                       ::testing::Values(1, 2)));

TEST(Kernels, GlobalAveragePool) {
  PlainBackend Backend(kLogN);
  ScaleConfig S;
  Tensor3 In = randomTensor(4, 6, 6, 8);
  TensorLayout L =
      makeInputLayout(LayoutKind::CHW, 4, 6, 6, 0, Backend.slotCount());
  auto Enc = encryptTensor(Backend, In, L, S);
  auto Out = globalAveragePool(Backend, Enc, S);
  Tensor3 Got = decryptTensor(Backend, Out);
  Tensor3 Want = refAveragePool(In, 6, 6);
  EXPECT_LT(maxAbsDiff(Got, Want), 1e-9);
}

TEST(Kernels, PolyActivationMatchesReference) {
  PlainBackend Backend(kLogN);
  ScaleConfig S;
  Tensor3 In = randomTensor(2, 5, 5, 9);
  for (auto Kind : {LayoutKind::HW, LayoutKind::CHW}) {
    TensorLayout L = makeInputLayout(Kind, 2, 5, 5, 1, Backend.slotCount());
    auto Enc = encryptTensor(Backend, In, L, S);
    auto Out = polyActivation(Backend, Enc, 0.25, -1.5, S);
    Tensor3 Got = decryptTensor(Backend, Out);
    Tensor3 Want = refPolyActivation(In, 0.25, -1.5);
    EXPECT_LT(maxAbsDiff(Got, Want), 1e-9);
  }
}

TEST(Kernels, PolyActivationLinearOnly) {
  PlainBackend Backend(kLogN);
  ScaleConfig S;
  Tensor3 In = randomTensor(1, 4, 4, 10);
  TensorLayout L =
      makeInputLayout(LayoutKind::HW, 1, 4, 4, 0, Backend.slotCount());
  auto Enc = encryptTensor(Backend, In, L, S);
  auto Out = polyActivation(Backend, Enc, 0.0, 2.0, S);
  Tensor3 Got = decryptTensor(Backend, Out);
  Tensor3 Want = refPolyActivation(In, 0.0, 2.0);
  EXPECT_LT(maxAbsDiff(Got, Want), 1e-9);
}

TEST(Kernels, PolyActivationPreservesMarginInvariant) {
  // Margins must still be zero afterwards even though addScalar touches
  // every slot.
  PlainBackend Backend(kLogN);
  ScaleConfig S;
  Tensor3 In = randomTensor(1, 4, 4, 11);
  TensorLayout L =
      makeInputLayout(LayoutKind::HW, 1, 4, 4, 2, Backend.slotCount());
  auto Enc = encryptTensor(Backend, In, L, S);
  auto Out = polyActivation(Backend, Enc, 0.5, 1.0, S);
  auto Slots = Backend.decode(Backend.decrypt(Out.Cts[0]));
  double OffGrid = 0;
  for (size_t I = 0; I < Slots.size(); ++I)
    OffGrid += std::abs(Slots[I]);
  double Valid = 0;
  for (int Y = 0; Y < 4; ++Y)
    for (int X = 0; X < 4; ++X)
      Valid += std::abs(Slots[Out.L.slotOf(0, Y, X)]);
  EXPECT_NEAR(OffGrid, Valid, 1e-9);
}

class FcKernelTest : public ::testing::TestWithParam<LayoutKind> {};

TEST_P(FcKernelTest, MatchesReference) {
  PlainBackend Backend(kLogN);
  ScaleConfig S;
  Tensor3 In = randomTensor(3, 4, 4, 12);
  TensorLayout L =
      makeInputLayout(GetParam(), 3, 4, 4, 1, Backend.slotCount());
  FcWeights Wt = randomFc(10, 3 * 4 * 4, 13);
  auto Enc = encryptTensor(Backend, In, L, S);
  auto Out = fullyConnected(Backend, Enc, Wt, S);
  Tensor3 Got = decryptTensor(Backend, Out);
  Tensor3 Want = refFullyConnected(In, Wt);
  EXPECT_LT(maxAbsDiff(Got, Want), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Layouts, FcKernelTest,
                         ::testing::Values(LayoutKind::HW, LayoutKind::CHW));

TEST(Kernels, FcOnStridedInput) {
  // FC directly after a strided pool: features live on a sparse grid and
  // must be picked up without compaction.
  PlainBackend Backend(kLogN);
  ScaleConfig S;
  Tensor3 In = randomTensor(2, 8, 8, 14);
  TensorLayout L =
      makeInputLayout(LayoutKind::HW, 2, 8, 8, 0, Backend.slotCount());
  auto Enc = encryptTensor(Backend, In, L, S);
  auto Pooled = averagePool(Backend, Enc, 2, 2, S);
  FcWeights Wt = randomFc(6, 2 * 4 * 4, 15);
  auto Out = fullyConnected(Backend, Pooled, Wt, S);
  Tensor3 Got = decryptTensor(Backend, Out);
  Tensor3 Want = refFullyConnected(refAveragePool(In, 2, 2), Wt);
  EXPECT_LT(maxAbsDiff(Got, Want), 1e-9);
}

TEST(Kernels, ChainedFcLayers) {
  PlainBackend Backend(kLogN);
  ScaleConfig S;
  Tensor3 In = randomTensor(1, 4, 4, 16);
  TensorLayout L =
      makeInputLayout(LayoutKind::CHW, 1, 4, 4, 0, Backend.slotCount());
  FcWeights Fc1 = randomFc(8, 16, 17);
  FcWeights Fc2 = randomFc(3, 8, 18);
  auto Enc = encryptTensor(Backend, In, L, S);
  auto H1 = fullyConnected(Backend, Enc, Fc1, S);
  auto H2 = polyActivation(Backend, H1, 0.1, 1.0, S);
  auto Out = fullyConnected(Backend, H2, Fc2, S);
  Tensor3 Got = decryptTensor(Backend, Out);
  Tensor3 Want = refFullyConnected(
      refPolyActivation(refFullyConnected(In, Fc1), 0.1, 1.0), Fc2);
  EXPECT_LT(maxAbsDiff(Got, Want), 1e-8);
}

class FcBsgsTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(FcBsgsTest, MatchesReferenceAndReplicate) {
  auto [C, HW, Out] = GetParam();
  PlainBackend Backend(kLogN);
  ScaleConfig S;
  Tensor3 In = randomTensor(C, HW, HW, 31);
  TensorLayout L =
      makeInputLayout(LayoutKind::CHW, C, HW, HW, 1, Backend.slotCount());
  FcWeights Wt = randomFc(Out, C * HW * HW, 32);
  auto Enc = encryptTensor(Backend, In, L, S);
  ASSERT_EQ(Enc.L.ctCount(), 1);
  auto Bsgs = fullyConnectedBsgs(Backend, Enc, Wt, S);
  Tensor3 Got = decryptTensor(Backend, Bsgs);
  Tensor3 Want = refFullyConnected(In, Wt);
  EXPECT_LT(maxAbsDiff(Got, Want), 1e-9);

  auto Repl = fullyConnectedReplicate(Backend, Enc, Wt, S);
  Tensor3 GotRepl = decryptTensor(Backend, Repl);
  EXPECT_LT(maxAbsDiff(GotRepl, Want), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, FcBsgsTest,
                         ::testing::Values(std::tuple{1, 4, 3},
                                           std::tuple{2, 4, 10},
                                           std::tuple{3, 5, 40},
                                           std::tuple{1, 8, 64},
                                           std::tuple{2, 6, 1}));

TEST(Kernels, FcBsgsOnStridedInput) {
  // The generalized diagonals index by physical slot, so decimated
  // (post-pooling) inputs need no compaction.
  PlainBackend Backend(kLogN);
  ScaleConfig S;
  Tensor3 In = randomTensor(2, 8, 8, 33);
  TensorLayout L =
      makeInputLayout(LayoutKind::CHW, 2, 8, 8, 0, Backend.slotCount());
  auto Enc = encryptTensor(Backend, In, L, S);
  auto Pooled = averagePool(Backend, Enc, 2, 2, S);
  FcWeights Wt = randomFc(12, 2 * 4 * 4, 34);
  auto Got = decryptTensor(Backend, fullyConnectedBsgs(Backend, Pooled, Wt, S));
  Tensor3 Want = refFullyConnected(refAveragePool(In, 2, 2), Wt);
  EXPECT_LT(maxAbsDiff(Got, Want), 1e-9);
}

TEST(Kernels, FcAlgorithmHeuristic) {
  PlainBackend Backend(kLogN);
  // Many outputs on a single ciphertext: BSGS.
  TensorLayout Big =
      makeInputLayout(LayoutKind::CHW, 4, 8, 8, 0, Backend.slotCount());
  FcWeights Wide = randomFc(256, 4 * 8 * 8, 35);
  EXPECT_EQ(fcAlgorithmFor(Big, Wide, LayoutKind::CHW), FcAlgorithm::Bsgs);
  // Very few outputs: replicate-and-sum.
  FcWeights Narrow = randomFc(2, 4 * 8 * 8, 36);
  EXPECT_EQ(fcAlgorithmFor(Big, Narrow, LayoutKind::CHW),
            FcAlgorithm::Replicate);
  // HW output layout or multi-ciphertext input force replicate.
  EXPECT_EQ(fcAlgorithmFor(Big, Wide, LayoutKind::HW),
            FcAlgorithm::Replicate);
  TensorLayout Multi =
      makeInputLayout(LayoutKind::HW, 3, 8, 8, 0, Backend.slotCount());
  EXPECT_EQ(fcAlgorithmFor(Multi, Wide, LayoutKind::CHW),
            FcAlgorithm::Replicate);
}

TEST(Kernels, FcDiagonalCountMatchesPlainCount) {
  PlainBackend Backend(kLogN);
  TensorLayout L =
      makeInputLayout(LayoutKind::CHW, 2, 4, 4, 0, Backend.slotCount());
  FcWeights Wt = randomFc(8, 32, 37);
  int G = fcGiantStep(L.Slots);
  auto Plains = buildFcBsgsPlains(L, Wt, G);
  EXPECT_EQ(countFcDiagonals(L, Wt), Plains.size());
}

TEST(Kernels, ConvertLayoutRoundTrip) {
  PlainBackend Backend(kLogN);
  ScaleConfig S;
  Tensor3 In = randomTensor(5, 6, 6, 19);
  TensorLayout L =
      makeInputLayout(LayoutKind::HW, 5, 6, 6, 1, Backend.slotCount());
  auto Enc = encryptTensor(Backend, In, L, S);
  auto Chw = convertLayout(Backend, Enc, LayoutKind::CHW, S);
  EXPECT_EQ(Chw.L.Kind, LayoutKind::CHW);
  EXPECT_LT(Chw.L.ctCount(), Enc.L.ctCount());
  Tensor3 Mid = decryptTensor(Backend, Chw);
  EXPECT_LT(maxAbsDiff(Mid, In), 1e-9);
  auto Hw = convertLayout(Backend, Chw, LayoutKind::HW, S);
  EXPECT_EQ(Hw.L.Kind, LayoutKind::HW);
  Tensor3 Back = decryptTensor(Backend, Hw);
  EXPECT_LT(maxAbsDiff(Back, In), 1e-9);
}

TEST(Kernels, ConvAfterLayoutConversion) {
  PlainBackend Backend(kLogN);
  ScaleConfig S;
  Tensor3 In = randomTensor(3, 8, 8, 20);
  ConvWeights Wt = randomConv(4, 3, 3, 21);
  TensorLayout L =
      makeInputLayout(LayoutKind::HW, 3, 8, 8, 1, Backend.slotCount());
  auto Enc = encryptTensor(Backend, In, L, S);
  auto Chw = convertLayout(Backend, Enc, LayoutKind::CHW, S);
  auto Out = conv2d(Backend, Chw, Wt, 1, 1, S);
  Tensor3 Got = decryptTensor(Backend, Out);
  Tensor3 Want = refConv2d(In, Wt, 1, 1);
  EXPECT_LT(maxAbsDiff(Got, Want), 1e-9);
}

TEST(Kernels, ConvThenPoolThenConvPipeline) {
  // Margin sizing: the second conv (pad 2) runs at stride 2, so packing
  // needs 2 * 2 = 4 physical margin cells.
  PlainBackend Backend(kLogN);
  ScaleConfig S;
  Tensor3 In = randomTensor(1, 12, 12, 22);
  ConvWeights Conv1 = randomConv(2, 1, 5, 23);
  ConvWeights Conv2 = randomConv(3, 2, 5, 24);
  TensorLayout L =
      makeInputLayout(LayoutKind::HW, 1, 12, 12, 4, Backend.slotCount());
  auto Enc = encryptTensor(Backend, In, L, S);
  auto C1 = conv2d(Backend, Enc, Conv1, 1, 2, S);
  auto P1 = averagePool(Backend, C1, 2, 2, S);
  auto C2 = conv2d(Backend, P1, Conv2, 1, 2, S);
  Tensor3 Got = decryptTensor(Backend, C2);
  Tensor3 Want =
      refConv2d(refAveragePool(refConv2d(In, Conv1, 1, 2), 2, 2), Conv2, 1,
                2);
  EXPECT_LT(maxAbsDiff(Got, Want), 1e-8);
}

} // namespace
