//===- test_hisa_properties.cpp - HISA semantics across backends -----------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed property tests: the same algebraic laws must hold for every HISA
/// implementation -- the plain reference, RNS-CKKS, and big-CKKS -- since
/// the kernels and the compiler treat them interchangeably (Section 4.1:
/// "this abstraction enables CHET to target new encryption schemes").
/// Each law is checked on random slot vectors within the scheme's
/// fixed-point tolerance.
///
//===----------------------------------------------------------------------===//

#include "ckks/BigCkks.h"
#include "ckks/RnsCkks.h"
#include "hisa/Hisa.h"
#include "hisa/PlainBackend.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

using namespace chet;

namespace {

constexpr double kScale = 1073741824.0; // 2^30

// Uniform construction + tolerance per backend type.
template <typename B> struct Harness;

template <> struct Harness<PlainBackend> {
  static std::unique_ptr<PlainBackend> make() {
    return std::make_unique<PlainBackend>(11);
  }
  static constexpr double Tol = 1e-9;
};

template <> struct Harness<RnsCkksBackend> {
  static std::unique_ptr<RnsCkksBackend> make() {
    RnsCkksParams P = RnsCkksParams::create(11, 4, 60, 30);
    P.Security = SecurityLevel::None;
    return std::make_unique<RnsCkksBackend>(P);
  }
  static constexpr double Tol = 2e-3;
};

template <> struct Harness<BigCkksBackend> {
  static std::unique_ptr<BigCkksBackend> make() {
    BigCkksParams P;
    P.LogN = 11;
    P.LogQ = 180;
    P.Security = SecurityLevel::None;
    return std::make_unique<BigCkksBackend>(P);
  }
  static constexpr double Tol = 2e-3;
};

template <typename B> class HisaLawsTest : public ::testing::Test {
protected:
  void SetUp() override { Backend = Harness<B>::make(); }

  std::vector<double> randomValues(uint64_t Seed, double Lo = -3,
                                   double Hi = 3) {
    Prng Rng(Seed);
    std::vector<double> V(Backend->slotCount());
    for (auto &X : V)
      X = Rng.nextDouble(Lo, Hi);
    return V;
  }

  typename B::Ct enc(const std::vector<double> &V) {
    return Backend->encrypt(Backend->encode(V, kScale));
  }

  std::vector<double> dec(const typename B::Ct &C) {
    return Backend->decode(Backend->decrypt(C));
  }

  void expectSlots(const typename B::Ct &C,
                   const std::vector<double> &Want, double TolScale = 1) {
    auto Got = dec(C);
    for (size_t I = 0; I < Want.size(); ++I)
      ASSERT_NEAR(Got[I], Want[I], Harness<B>::Tol * TolScale)
          << "slot " << I;
  }

  std::unique_ptr<B> Backend;
};

using Backends =
    ::testing::Types<PlainBackend, RnsCkksBackend, BigCkksBackend>;
TYPED_TEST_SUITE(HisaLawsTest, Backends);

TYPED_TEST(HisaLawsTest, AdditionCommutes) {
  auto A = this->randomValues(1), B = this->randomValues(2);
  auto CA = this->enc(A), CB = this->enc(B);
  auto AB = add(*this->Backend, CA, CB);
  auto BA = add(*this->Backend, CB, CA);
  auto GotAB = this->dec(AB), GotBA = this->dec(BA);
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_NEAR(GotAB[I], GotBA[I], 1e-9);
}

TYPED_TEST(HisaLawsTest, AddSubCancel) {
  auto A = this->randomValues(3), B = this->randomValues(4);
  auto C = this->enc(A);
  auto CB = this->enc(B);
  this->Backend->addAssign(C, CB);
  this->Backend->subAssign(C, CB);
  this->expectSlots(C, A);
}

TYPED_TEST(HisaLawsTest, MulDistributesOverAdd) {
  auto A = this->randomValues(5, -2, 2), B = this->randomValues(6, -2, 2),
       X = this->randomValues(7, -2, 2);
  auto CX = this->enc(X);
  // (a + b) * x vs a*x + b*x.
  auto CSum = add(*this->Backend, this->enc(A), this->enc(B));
  auto Lhs = mul(*this->Backend, CSum, CX);
  rescaleToFloor(*this->Backend, Lhs, kScale);
  auto Ax = mul(*this->Backend, this->enc(A), CX);
  rescaleToFloor(*this->Backend, Ax, kScale);
  auto Bx = mul(*this->Backend, this->enc(B), CX);
  rescaleToFloor(*this->Backend, Bx, kScale);
  this->Backend->addAssign(Ax, Bx);
  auto GotL = this->dec(Lhs), GotR = this->dec(Ax);
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_NEAR(GotL[I], GotR[I], 10 * Harness<TypeParam>::Tol);
}

TYPED_TEST(HisaLawsTest, RotationsCompose) {
  auto A = this->randomValues(8);
  auto C = this->enc(A);
  this->Backend->rotLeftAssign(C, 2);
  this->Backend->rotLeftAssign(C, 4); // both power-of-two: keyed
  size_t Slots = this->Backend->slotCount();
  std::vector<double> Want(Slots);
  for (size_t I = 0; I < Slots; ++I)
    Want[I] = A[(I + 6) % Slots];
  this->expectSlots(C, Want, 4);
}

TYPED_TEST(HisaLawsTest, RotationInverts) {
  auto A = this->randomValues(9);
  auto C = this->enc(A);
  this->Backend->rotLeftAssign(C, 8);
  this->Backend->rotRightAssign(C, 8);
  this->expectSlots(C, A, 4);
}

TYPED_TEST(HisaLawsTest, FullRotationIsIdentity) {
  auto A = this->randomValues(10);
  auto C = this->enc(A);
  this->Backend->rotLeftAssign(C,
                               static_cast<int>(this->Backend->slotCount()));
  this->expectSlots(C, A);
}

TYPED_TEST(HisaLawsTest, RotationCommutesWithAddition) {
  auto A = this->randomValues(11), B = this->randomValues(12);
  auto CA = this->enc(A), CB = this->enc(B);
  // rot(a + b) == rot(a) + rot(b)
  auto Sum = add(*this->Backend, CA, CB);
  this->Backend->rotLeftAssign(Sum, 4);
  auto RA = rotLeft(*this->Backend, CA, 4);
  auto RB = rotLeft(*this->Backend, CB, 4);
  this->Backend->addAssign(RA, RB);
  auto GotL = this->dec(Sum), GotR = this->dec(RA);
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_NEAR(GotL[I], GotR[I], 10 * Harness<TypeParam>::Tol);
}

TYPED_TEST(HisaLawsTest, ScalarAndPlainMultiplicationAgree) {
  auto A = this->randomValues(13, -2, 2);
  auto C1 = this->enc(A), C2 = this->enc(A);
  // Multiply by the constant 1.5 via mulScalar and via a mulPlain of the
  // constant vector.
  this->Backend->mulScalarAssign(C1, 1.5, uint64_t(kScale));
  std::vector<double> Const(this->Backend->slotCount(), 1.5);
  this->Backend->mulPlainAssign(C2, this->Backend->encode(Const, kScale));
  rescaleToFloor(*this->Backend, C1, kScale);
  rescaleToFloor(*this->Backend, C2, kScale);
  auto Got1 = this->dec(C1), Got2 = this->dec(C2);
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_NEAR(Got1[I], Got2[I], 10 * Harness<TypeParam>::Tol);
}

TYPED_TEST(HisaLawsTest, RescaleWithMaxRescalePreservesValues) {
  auto A = this->randomValues(14, -2, 2);
  auto C = this->enc(A);
  this->Backend->mulScalarAssign(C, 0.5, uint64_t(kScale));
  uint64_t D = this->Backend->maxRescale(
      C, static_cast<uint64_t>(this->Backend->scaleOf(C) / kScale));
  this->Backend->rescaleAssign(C, D);
  std::vector<double> Want(A.size());
  for (size_t I = 0; I < A.size(); ++I)
    Want[I] = 0.5 * A[I];
  this->expectSlots(C, Want, 4);
}

TYPED_TEST(HisaLawsTest, ScaleBookkeepingUnderOps) {
  auto A = this->randomValues(15);
  auto C = this->enc(A);
  EXPECT_NEAR(this->Backend->scaleOf(C), kScale, 1);
  this->Backend->rotLeftAssign(C, 1);
  EXPECT_NEAR(this->Backend->scaleOf(C), kScale, 1); // rotation: unchanged
  this->Backend->mulScalarAssign(C, 1.0, 1u << 10);
  EXPECT_NEAR(this->Backend->scaleOf(C), kScale * 1024, 1);
}

} // namespace
