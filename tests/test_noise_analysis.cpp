//===- test_noise_analysis.cpp - Static range/noise analysis tests --------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the static range/noise-budget analysis (NoiseAnalysis.h and
/// hisa/RangeNoiseBackend.h): backend growth rules against hand-computed
/// closed forms, circuit-level bounds against analytic L1 envelopes, a
/// deliberately under-scaled compile failing with PrecisionBound and
/// layer provenance, soundness against a real encrypted run, determinism
/// across thread counts, and the scale search's static accept pruning.
///
//===----------------------------------------------------------------------===//

#include "core/NoiseAnalysis.h"

#include "core/Compiler.h"
#include "hisa/RangeNoiseBackend.h"
#include "nn/Networks.h"
#include "runtime/ReferenceOps.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

using namespace chet;

namespace {

//===----------------------------------------------------------------------===//
// Backend growth rules: hand-computed closed forms, no circuit involved.
// With no node envelopes the caps are infinite, so the rules are pure
// interval arithmetic.
//===----------------------------------------------------------------------===//

RangeNoiseBackendConfig rawConfig() {
  RangeNoiseBackendConfig C;
  C.Rns = true;
  C.LogN = 13;
  C.ScalePrimeCandidates = {uint64_t(1) << 25, uint64_t(1) << 25};
  C.Noise = NoiseModel::create(SchemeKind::RnsCkks, 13,
                               {uint64_t(1) << 60, uint64_t(1) << 25,
                                uint64_t(1) << 25},
                               uint64_t(1) << 60, 0);
  C.InputAbs = 0.5;
  return C;
}

TEST(RangeNoiseBackend, EncryptCarriesFreshNoiseAndEncodeQuant) {
  RangeNoiseBackendConfig Config = rawConfig();
  RangeNoiseBackend B(Config);
  double Scale = std::ldexp(1.0, 25);
  auto P = B.encode({}, Scale);
  auto C = B.encrypt(P);
  EXPECT_DOUBLE_EQ(C.Abs, 0.5);
  EXPECT_DOUBLE_EQ(C.QuantErr, Config.Noise.encodeQuant() / Scale);
  EXPECT_DOUBLE_EQ(C.NoiseErr, Config.Noise.freshNoise() / Scale);
  EXPECT_DOUBLE_EQ(B.scaleOf(C), Scale);
}

TEST(RangeNoiseBackend, SingleMulChainMatchesClosedForm) {
  RangeNoiseBackendConfig Config = rawConfig();
  RangeNoiseBackend B(Config);
  double Scale = std::ldexp(1.0, 25);
  auto A = B.encrypt(B.encode({}, Scale));
  auto C = B.encrypt(B.encode({}, Scale));

  // err(a*b) = |a|e_b + |b|e_a + e_a e_b, plus the relinearization key
  // switch at the product scale.
  double Ea = A.QuantErr + A.NoiseErr;
  double WantQuant = A.Abs * C.QuantErr + C.Abs * A.QuantErr;
  double WantNoise = A.Abs * C.NoiseErr + C.Abs * A.NoiseErr + Ea * Ea +
                     Config.Noise.keySwitchNoise() / (Scale * Scale);
  B.mulAssign(A, C);
  EXPECT_DOUBLE_EQ(A.Abs, 0.25);
  EXPECT_DOUBLE_EQ(A.Scale, Scale * Scale);
  EXPECT_DOUBLE_EQ(A.QuantErr, WantQuant);
  EXPECT_DOUBLE_EQ(A.NoiseErr, WantNoise);

  // Rescale sheds one prime and adds rounding noise at the new scale.
  double PreNoise = A.NoiseErr;
  uint64_t Div = B.maxRescale(A, static_cast<uint64_t>(A.Scale / Scale));
  EXPECT_EQ(Div, uint64_t(1) << 25);
  B.rescaleAssign(A, Div);
  EXPECT_DOUBLE_EQ(A.Scale, Scale);
  EXPECT_EQ(A.ConsumedPrimes, 1);
  EXPECT_DOUBLE_EQ(A.NoiseErr,
                   PreNoise + Config.Noise.rescaleNoise() / Scale);
}

TEST(RangeNoiseBackend, RotationLadderChargesOneKeySwitchPerHop) {
  RangeNoiseBackendConfig Config = rawConfig();
  RangeNoiseBackend B(Config);
  double Scale = std::ldexp(1.0, 25);
  auto C = B.encrypt(B.encode({}, Scale));
  double Base = C.NoiseErr;
  double Ks = Config.Noise.keySwitchNoise() / Scale;
  for (int Hop = 1; Hop <= 4; ++Hop) {
    B.rotLeftAssign(C, 1 << Hop);
    EXPECT_DOUBLE_EQ(C.NoiseErr, Base + Hop * Ks);
  }
  // Value and quantization bounds are rotation-invariant.
  EXPECT_DOUBLE_EQ(C.Abs, 0.5);
  // A zero-step rotation degenerates to a copy: no key switch.
  double Before = C.NoiseErr;
  B.rotLeftAssign(C, 0);
  EXPECT_DOUBLE_EQ(C.NoiseErr, Before);
}

TEST(RangeNoiseBackend, AdditionSumsBoundsAndErrors) {
  RangeNoiseBackendConfig Config = rawConfig();
  RangeNoiseBackend B(Config);
  double Scale = std::ldexp(1.0, 25);
  auto A = B.encrypt(B.encode({}, Scale));
  auto C = B.encrypt(B.encode({}, Scale));
  double WantErr = A.QuantErr + C.QuantErr;
  B.addAssign(A, C);
  EXPECT_DOUBLE_EQ(A.Abs, 1.0);
  EXPECT_DOUBLE_EQ(A.QuantErr, WantErr);
  B.addScalarAssign(A, -2.0);
  EXPECT_DOUBLE_EQ(A.Abs, 3.0);
}

TEST(RangeNoiseBackend, NodeCapClampsIntervalButNotError) {
  RangeNoiseBackendConfig Config = rawConfig();
  RangeNoiseNodeEnv Env;
  Env.OutAbs = 0.75;
  Env.CapAbs = 0.75;
  Config.NodeEnv[4] = Env;
  RangeNoiseBackend B(Config);
  // Encrypt as input packing (outside any node, so InputAbs applies),
  // then enter the capped node -- inside a node a data-scale encode is
  // classified as a bias, and this env has none.
  double Scale = std::ldexp(1.0, 25);
  auto A = B.encrypt(B.encode({}, Scale));
  auto C = B.copy(A);
  B.beginNode(4, "capped");
  double WantErr = 2 * A.QuantErr;
  B.addAssign(A, C); // naive bound 1.0, semantic cap 0.75
  EXPECT_DOUBLE_EQ(A.Abs, 0.75);
  EXPECT_DOUBLE_EQ(A.QuantErr, WantErr); // errors are never clamped
}

//===----------------------------------------------------------------------===//
// Circuit-level analysis: analytic envelopes and provenance.
//===----------------------------------------------------------------------===//

/// input(1x8x8) -> conv 3x3 (all weights W, bias Bias) -> square act.
TensorCircuit convActCircuit(double W, double Bias) {
  TensorCircuit Circ("noise-conv");
  int In = Circ.input(1, 8, 8);
  ConvWeights Wt;
  Wt.Cout = 1;
  Wt.Cin = 1;
  Wt.Kh = 3;
  Wt.Kw = 3;
  Wt.W.assign(9, W);
  Wt.Bias.assign(1, Bias);
  int Conv = Circ.conv2d(In, Wt, 1, 1);
  int Act = Circ.polyActivation(Conv, 1.0, 0.0);
  Circ.output(Act);
  return Circ;
}

CompilerOptions noiseOptions(int ScaleExp = 30) {
  CompilerOptions O;
  O.Scheme = SchemeKind::RnsCkks;
  O.Scales = ScaleConfig::fromExponents(ScaleExp, ScaleExp, ScaleExp,
                                        std::min(ScaleExp, 16));
  return O;
}

TEST(NoiseAnalysis, RangeEnvelopesMatchL1TransferFunctions) {
  TensorCircuit Circ = convActCircuit(0.25, 0.125);
  auto Env = rangeEnvelopes(Circ, 0.5);
  // Conv node (id 1): L1 = 9 * 0.25, out = 0.5 * 2.25 + 0.125.
  EXPECT_DOUBLE_EQ(Env[1].OutAbs, 0.5 * 2.25 + 0.125);
  EXPECT_DOUBLE_EQ(Env[1].WeightAbs, 0.25);
  EXPECT_DOUBLE_EQ(Env[1].BiasAbs, 0.125);
  // Square activation (id 2): x^2 over |x| <= R.
  double R = Env[1].OutAbs;
  EXPECT_DOUBLE_EQ(Env[2].OutAbs, R * R);
  // Output node passes through.
  EXPECT_DOUBLE_EQ(Env[Circ.outputId()].OutAbs, R * R);
}

TEST(NoiseAnalysis, FcEnvelopeUsesWorstRowL1) {
  TensorCircuit Circ("noise-fc");
  int In = Circ.input(1, 4, 4);
  FcWeights Wt;
  Wt.Out = 2;
  Wt.In = 16;
  Wt.W.assign(32, 0.0);
  for (int I = 0; I < 16; ++I)
    Wt.W[static_cast<size_t>(I)] = (I % 2) ? 0.5 : -0.5; // row 0: L1 = 8
  Wt.W[16] = 0.25;                                       // row 1: L1 = .25
  Wt.Bias = {0.5, -1.5};
  int Fc = Circ.fullyConnected(In, Wt);
  Circ.output(Fc);
  auto Env = rangeEnvelopes(Circ, 0.5);
  EXPECT_DOUBLE_EQ(Env[1].OutAbs, 0.5 * 8.0 + 1.5);
  EXPECT_DOUBLE_EQ(Env[1].BiasAbs, 1.5);
}

TEST(NoiseAnalysis, CompiledCircuitCarriesFiniteBound) {
  TensorCircuit Circ = convActCircuit(0.25, 0.125);
  CompiledCircuit Compiled = compileCircuit(Circ, noiseOptions());
  ASSERT_TRUE(Compiled.Noise.Analyzed);
  EXPECT_TRUE(std::isfinite(Compiled.Noise.ErrorBound));
  EXPECT_GT(Compiled.Noise.ErrorBound, 0);
  EXPECT_DOUBLE_EQ(Compiled.Noise.ErrorBound,
                   Compiled.Noise.QuantBound + Compiled.Noise.NoiseBound);
  // The message bound is the activation's semantic envelope.
  auto Env = rangeEnvelopes(Circ, 0.5);
  EXPECT_LE(Compiled.Noise.MessageBound,
            Env[Circ.outputId()].OutAbs * (1 + 1e-9));
}

TEST(NoiseAnalysis, ReportNamesHotspotLayers) {
  TensorCircuit Circ = convActCircuit(0.25, 0.125);
  CompiledCircuit Compiled = compileCircuit(Circ, noiseOptions());
  NoiseReport R = analyzeNoise(Circ, Compiled);
  ASSERT_FALSE(R.PerNode.empty());
  EXPECT_EQ(R.PerNode.front().NodeId, -1); // input packing row
  auto Hot = R.hotspots(1);
  ASSERT_EQ(Hot.size(), 1u);
  // The activation squares the error; it must be the hotspot, and the
  // rendered report must name it.
  EXPECT_NE(R.str().find(Hot.front().Label), std::string::npos);
  for (const NoiseNodeReport &Row : R.PerNode)
    EXPECT_LE(Row.PeakErr, Hot.front().PeakErr);
}

TEST(NoiseAnalysis, UnderScaledCircuitFailsWithPrecisionBound) {
  // Weights of 1.0 keep the circuit semantically harmless but leave
  // every error term un-attenuated; at 2^16 scales the fresh encryption
  // noise alone exceeds the target.
  TensorCircuit Circ = convActCircuit(1.0, 0.5);
  CompilerOptions Bad = noiseOptions(16);
  Bad.MaxOutputError = 1.0;
  try {
    compileCircuit(Circ, Bad);
    FAIL() << "under-scaled compile must throw PrecisionBound";
  } catch (const ChetError &E) {
    EXPECT_EQ(E.code(), ErrorCode::PrecisionBound);
    // Layer provenance: the hotspot report names the offending layers.
    EXPECT_NE(std::string(E.what()).find("layer '"), std::string::npos);
  }
  // The same circuit and target compile fine at healthy scales: the
  // failure above is the scales, not the target.
  CompilerOptions Good = noiseOptions(30);
  Good.MaxOutputError = 1.0;
  EXPECT_NO_THROW(compileCircuit(Circ, Good));
}

TEST(NoiseAnalysis, StaticBoundIsSoundOnEncryptedRun) {
  TensorCircuit Circ = makeLeNet5Small(8);
  CompilerOptions Options = noiseOptions();
  CompiledCircuit Compiled = compileCircuit(Circ, Options);
  ASSERT_TRUE(Compiled.Noise.Analyzed);
  RnsCkksBackend Backend = makeRnsBackend(Compiled);
  Tensor3 Image = randomImageFor(Circ, 77);
  Tensor3 Got = runEncryptedInference(Backend, Circ, Image, Compiled.Scales,
                                      Compiled.Policy);
  Tensor3 Want = Circ.evaluatePlain(Image);
  double Measured = maxAbsDiff(Got, Want);
  EXPECT_LE(Measured, Compiled.Noise.ErrorBound);
  // And the message bound really bounds the outputs.
  for (double V : Want.Data)
    EXPECT_LE(std::fabs(V), Compiled.Noise.MessageBound * (1 + 1e-9));
}

TEST(NoiseAnalysis, BoundIsDeterministicAcrossThreadCounts) {
  TensorCircuit Circ = makeLeNet5Small(8);
  CompilerOptions Options = noiseOptions();
  std::vector<double> Bounds;
  for (unsigned Threads : {1u, 2u, 8u}) {
    setGlobalThreadCount(Threads);
    CompiledCircuit Compiled = compileCircuit(Circ, Options);
    NoiseReport R = analyzeNoise(Circ, Compiled);
    EXPECT_DOUBLE_EQ(R.ErrorBound, Compiled.Noise.ErrorBound);
    Bounds.push_back(R.ErrorBound);
  }
  setGlobalThreadCount(0);
  EXPECT_EQ(Bounds[0], Bounds[1]); // bit-identical, not approximately
  EXPECT_EQ(Bounds[0], Bounds[2]);
}

//===----------------------------------------------------------------------===//
// Scale search: static accepts replace encrypted trials, same answer.
//===----------------------------------------------------------------------===//

TEST(NoiseAnalysis, ScaleSearchPrunesEncryptedRunsWithIdenticalResult) {
  TensorCircuit Circ = convActCircuit(0.25, 0.125);
  CompilerOptions Options = noiseOptions();
  // Tolerance chosen from the starting point's own static bound, so at
  // least that candidate is statically provable.
  CompiledCircuit Compiled = compileCircuit(Circ, Options);
  ASSERT_TRUE(Compiled.Noise.Analyzed);
  ScaleSearchOptions Baseline;
  Baseline.Tolerance = Compiled.Noise.ErrorBound * 2;
  Baseline.UseStaticBound = false;
  ScaleSearchOptions Pruned = Baseline;
  Pruned.UseStaticBound = true;

  std::vector<Tensor3> Inputs = {randomImageFor(Circ, 3)};
  ScaleSearchResult Ref = selectScales(Circ, Options, Inputs, Baseline);
  ScaleSearchResult Got = selectScales(Circ, Options, Inputs, Pruned);

  // Identical final scales and trial decisions...
  EXPECT_EQ(Got.Scales.Image, Ref.Scales.Image);
  EXPECT_EQ(Got.Scales.Weight, Ref.Scales.Weight);
  EXPECT_EQ(Got.Scales.Scalar, Ref.Scales.Scalar);
  EXPECT_EQ(Got.Scales.Mask, Ref.Scales.Mask);
  EXPECT_EQ(Got.Trials, Ref.Trials);
  EXPECT_EQ(Got.AcceptedSteps, Ref.AcceptedSteps);
  // ...with strictly fewer encrypted evaluations.
  EXPECT_EQ(Ref.EncryptedRuns, Ref.Trials);
  EXPECT_EQ(Ref.StaticAccepts, 0);
  EXPECT_GE(Got.StaticAccepts, 1);
  EXPECT_LT(Got.EncryptedRuns, Ref.EncryptedRuns);
  // Every trial is exactly one of the two: statically accepted, or run
  // encrypted (the static bound can only prove acceptance, so every
  // rejection went through ciphertexts).
  EXPECT_EQ(Got.EncryptedRuns + Got.StaticAccepts, Got.Trials);
  EXPECT_EQ(Got.StaticAccepts,
            Ref.EncryptedRuns - Got.EncryptedRuns); // one-for-one savings
}

} // namespace
