//===- test_prng.cpp - Unit tests for the PRNG ----------------------------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Prng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace chet;

TEST(Prng, DeterministicForSameSeed) {
  Prng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Prng, DifferentSeedsDiffer) {
  Prng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 2);
}

TEST(Prng, BoundedStaysInRange) {
  Prng Rng(7);
  for (uint64_t Bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000003ULL, 1ULL << 62}) {
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(Rng.nextBounded(Bound), Bound);
  }
}

TEST(Prng, BoundedIsRoughlyUniform) {
  Prng Rng(11);
  const uint64_t Bound = 10;
  int Counts[10] = {};
  const int Samples = 100000;
  for (int I = 0; I < Samples; ++I)
    ++Counts[Rng.nextBounded(Bound)];
  for (int Count : Counts) {
    EXPECT_GT(Count, Samples / 10 - 1000);
    EXPECT_LT(Count, Samples / 10 + 1000);
  }
}

TEST(Prng, DoubleInUnitInterval) {
  Prng Rng(13);
  double Sum = 0;
  for (int I = 0; I < 10000; ++I) {
    double X = Rng.nextDouble();
    ASSERT_GE(X, 0.0);
    ASSERT_LT(X, 1.0);
    Sum += X;
  }
  EXPECT_NEAR(Sum / 10000.0, 0.5, 0.02);
}

TEST(Prng, TernaryDistribution) {
  Prng Rng(17);
  int Counts[3] = {};
  const int Samples = 100000;
  for (int I = 0; I < Samples; ++I)
    ++Counts[Rng.nextTernary() + 1];
  // P(-1) = P(+1) = 1/4, P(0) = 1/2.
  EXPECT_NEAR(Counts[0] / double(Samples), 0.25, 0.01);
  EXPECT_NEAR(Counts[1] / double(Samples), 0.50, 0.01);
  EXPECT_NEAR(Counts[2] / double(Samples), 0.25, 0.01);
}

TEST(Prng, GaussianMomentsMatch) {
  Prng Rng(19);
  const double Sigma = 3.2;
  const int Samples = 200000;
  double Sum = 0, SumSq = 0;
  for (int I = 0; I < Samples; ++I) {
    double X = static_cast<double>(Rng.nextCenteredGaussian(Sigma));
    Sum += X;
    SumSq += X * X;
  }
  double Mean = Sum / Samples;
  double Var = SumSq / Samples - Mean * Mean;
  EXPECT_NEAR(Mean, 0.0, 0.05);
  // Centered binomial variance k/2 with k = ceil(2 sigma^2): 10.5 vs 10.24.
  EXPECT_NEAR(Var, 10.5, 0.3);
}

TEST(Prng, NormalMomentsMatch) {
  Prng Rng(23);
  const int Samples = 200000;
  double Sum = 0, SumSq = 0;
  for (int I = 0; I < Samples; ++I) {
    double X = Rng.nextNormal();
    Sum += X;
    SumSq += X * X;
  }
  EXPECT_NEAR(Sum / Samples, 0.0, 0.02);
  EXPECT_NEAR(SumSq / Samples, 1.0, 0.03);
}

TEST(Prng, ReseedResetsStream) {
  Prng Rng(5);
  std::vector<uint64_t> First;
  for (int I = 0; I < 16; ++I)
    First.push_back(Rng.next());
  Rng.reseed(5);
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(Rng.next(), First[I]);
}
