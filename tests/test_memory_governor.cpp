//===- test_memory_governor.cpp - Budget, footprint, degradation ----------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the memory-governance stack:
///   - MemoryGovernor ledger invariants, watermark-triggered reclaim, and
///     race-free accounting at 1/2/8 threads (runs under the TSan CI job);
///   - EncodedPlaintextCache byte cap, LRU eviction order, and
///     governor-triggered eviction;
///   - the static footprint analysis upper-bounds the measured limb-pool
///     high-water on both CKKS schemes;
///   - bad_alloc containment: an allocation failure inside a session node
///     is retried after reclaim and the completed result is byte-identical
///     to the failure-free run;
///   - budget-aware server admission: impossible footprints are rejected
///     with ResourceExhausted, co-tenants serialize under a budget that
///     fits one at a time, pressure sheds newest-first, and a constrained
///     chaos soak still completes every request byte-identically.
///
//===----------------------------------------------------------------------===//

#include "support/MemoryGovernor.h"

#include "ckks/BigCkks.h"
#include "ckks/RnsCkks.h"
#include "ckks/Serialization.h"
#include "core/Compiler.h"
#include "core/Evaluate.h"
#include "core/FootprintAnalysis.h"
#include "hisa/FaultInjectionBackend.h"
#include "hisa/IntegrityBackend.h"
#include "hisa/PlainBackend.h"
#include "nn/Networks.h"
#include "server/Server.h"
#include "support/LimbPool.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <new>
#include <thread>
#include <vector>

using namespace chet;

namespace {

/// The governor is process-wide; every test that sets a budget restores
/// the unlimited default so test order cannot matter.
struct GovernorGuard {
  ~GovernorGuard() {
    MemoryGovernor::instance().setBudgetBytes(0);
    MemoryGovernor::instance().setSoftWatermark(0.85);
    MemoryGovernor::instance().resetStats();
  }
};

struct PoolGuard {
  ~PoolGuard() { setGlobalThreadCount(0); }
};

/// Same tiny conv -> act -> pool -> FC circuit the server tests use.
TensorCircuit smallCircuit(uint64_t Seed = 50) {
  Prng Rng(Seed);
  TensorCircuit Circ("governor-tiny");
  ConvWeights Conv(2, 1, 3, 3);
  for (double &V : Conv.W)
    V = Rng.nextDouble(-0.5, 0.5);
  FcWeights Fc(4, 2 * 4 * 4);
  for (double &V : Fc.W)
    V = Rng.nextDouble(-0.3, 0.3);
  int X = Circ.input(1, 8, 8);
  Circ.setLabel(X, "in");
  X = Circ.conv2d(X, Conv, 1, 1);
  Circ.setLabel(X, "conv1");
  X = Circ.polyActivation(X, 0.25, 0.5);
  Circ.setLabel(X, "act1");
  X = Circ.averagePool(X, 2, 2);
  Circ.setLabel(X, "pool1");
  X = Circ.fullyConnected(X, Fc);
  Circ.setLabel(X, "fc1");
  Circ.output(X);
  return Circ;
}

CompiledCircuit compileSmall(const TensorCircuit &Circ, SchemeKind Scheme) {
  CompilerOptions O;
  O.Scheme = Scheme;
  O.Security = SecurityLevel::Classical128;
  O.Scales = ScaleConfig::fromExponents(25, 25, 25, 12);
  return compileCircuit(Circ, O);
}

ScaleConfig plainScales() { return ScaleConfig::fromExponents(25, 25, 25, 12); }

template <typename To, typename From>
CipherTensor<To> retag(CipherTensor<From> T) {
  static_assert(std::is_same_v<typename To::Ct, typename From::Ct>);
  CipherTensor<To> Out;
  Out.L = T.L;
  Out.Cts = std::move(T.Cts);
  return Out;
}

SessionRetryPolicy fastRetry(int MaxAttempts) {
  SessionRetryPolicy R;
  R.MaxAttempts = MaxAttempts;
  R.BackoffBaseSeconds = 1e-6;
  R.BackoffMaxSeconds = 1e-5;
  return R;
}

//===----------------------------------------------------------------------===//
// Governor ledger
//===----------------------------------------------------------------------===//

TEST(MemoryGovernor, LedgerAccountingAndBudgetEnforcement) {
  GovernorGuard Guard;
  MemoryGovernor &G = MemoryGovernor::instance();
  G.setBudgetBytes(1000);
  G.resetStats();

  EXPECT_TRUE(G.wouldFit(1000));
  EXPECT_FALSE(G.wouldFit(1001));
  EXPECT_TRUE(G.tryReserve(400));
  EXPECT_TRUE(G.tryReserve(400));
  EXPECT_FALSE(G.tryReserve(400)) << "800 + 400 exceeds the budget";
  EXPECT_TRUE(G.wouldFit(200));
  EXPECT_FALSE(G.wouldFit(201));

  MemoryGovernorStats S = G.stats();
  EXPECT_EQ(S.BudgetBytes, 1000u);
  EXPECT_EQ(S.ReservedBytes, 800u);
  EXPECT_EQ(S.HighWaterBytes, 800u);
  EXPECT_EQ(S.Reservations, 2u);
  EXPECT_EQ(S.Failures, 1u);

  G.release(400);
  EXPECT_TRUE(G.tryReserve(600));
  S = G.stats();
  EXPECT_EQ(S.ReservedBytes, 1000u);
  EXPECT_EQ(S.HighWaterBytes, 1000u);
  G.release(600);
  G.release(400);
  EXPECT_EQ(G.stats().ReservedBytes, 0u);

  // Reserving zero bytes always succeeds and counts nothing.
  uint64_t Before = G.stats().Reservations;
  EXPECT_TRUE(G.tryReserve(0));
  EXPECT_EQ(G.stats().Reservations, Before);

  // A mismatched release clamps at zero instead of underflowing.
  G.release(1 << 30);
  EXPECT_EQ(G.stats().ReservedBytes, 0u);

  // Budget 0 = unlimited, but the ledger still measures the peak.
  G.setBudgetBytes(0);
  G.resetStats();
  EXPECT_TRUE(G.tryReserve(uint64_t(1) << 40));
  EXPECT_FALSE(G.underPressure());
  EXPECT_EQ(G.stats().HighWaterBytes, uint64_t(1) << 40);
  G.release(uint64_t(1) << 40);
}

TEST(MemoryGovernor, WatermarkCrossingRunsStagedReclaim) {
  GovernorGuard Guard;
  MemoryGovernor &G = MemoryGovernor::instance();
  G.setBudgetBytes(1000);
  G.setSoftWatermark(0.5);
  G.resetStats();

  std::atomic<int> CacheRuns{0}, CheckpointRuns{0};
  uint64_t H0 = G.addReclaimer(MemoryGovernor::StageCacheEvict, [&] {
    CacheRuns.fetch_add(1);
    return uint64_t(64);
  });
  uint64_t H2 = G.addReclaimer(MemoryGovernor::StageCheckpointShrink, [&] {
    CheckpointRuns.fetch_add(1);
    return uint64_t(0);
  });

  EXPECT_TRUE(G.tryReserve(400)); // below watermark: no reclaim
  EXPECT_FALSE(G.underPressure());
  EXPECT_EQ(CacheRuns.load(), 0);
  EXPECT_TRUE(G.tryReserve(200)); // crosses 50%: stages 0-1 run
  EXPECT_TRUE(G.underPressure());
  EXPECT_EQ(CacheRuns.load(), 1);
  EXPECT_EQ(CheckpointRuns.load(), 0)
      << "the automatic pass stops at the pool-trim stage";

  // Explicit full-ladder reclaim reaches the checkpoint stage too.
  G.reclaim();
  EXPECT_EQ(CacheRuns.load(), 2);
  EXPECT_EQ(CheckpointRuns.load(), 1);
  MemoryGovernorStats S = G.stats();
  EXPECT_GE(S.Reclaims, 2u);
  EXPECT_GE(S.ReclaimedBytes, 128u);

  G.removeReclaimer(H0);
  G.removeReclaimer(H2);
  G.release(600);
  G.reclaim();
  EXPECT_EQ(CacheRuns.load(), 2) << "removed reclaimers never run again";
}

TEST(MemoryGovernor, ConcurrentReserveReleaseNeverOvercommits) {
  GovernorGuard Guard;
  MemoryGovernor &G = MemoryGovernor::instance();
  constexpr uint64_t Budget = 10000;
  constexpr uint64_t Chunk = 1000;
  G.setBudgetBytes(Budget);

  for (unsigned Threads : {1u, 2u, 8u}) {
    G.resetStats();
    std::vector<std::thread> Workers;
    std::atomic<uint64_t> Granted{0};
    for (unsigned T = 0; T < Threads; ++T)
      Workers.emplace_back([&] {
        for (int I = 0; I < 2000; ++I) {
          if (G.tryReserve(Chunk)) {
            Granted.fetch_add(1, std::memory_order_relaxed);
            EXPECT_LE(G.stats().ReservedBytes, Budget);
            G.release(Chunk);
          }
        }
      });
    for (std::thread &W : Workers)
      W.join();
    MemoryGovernorStats S = G.stats();
    EXPECT_EQ(S.ReservedBytes, 0u) << "threads=" << Threads;
    EXPECT_EQ(S.Reservations, Granted.load()) << "threads=" << Threads;
    EXPECT_LE(S.HighWaterBytes, Budget) << "threads=" << Threads;
    EXPECT_GE(S.HighWaterBytes, Chunk) << "threads=" << Threads;
  }
}

//===----------------------------------------------------------------------===//
// Bounded plaintext cache
//===----------------------------------------------------------------------===//

TEST(PlaintextCacheBudget, ByteCapEvictsLeastRecentlyUsed) {
  PlainBackend Plain(6);
  EncodedPlaintextCache<PlainBackend> Cache;
  std::vector<double> Vals(Plain.slotCount(), 1.0);
  auto KeyFor = [](uint64_t Id) {
    EncodedPlaintextCache<PlainBackend>::Key K;
    K.TensorId = Id;
    K.Sub = kSubWeight;
    K.Scale = 1 << 12;
    return K;
  };
  auto Build = [&] { return Plain.encode(Vals, 1 << 12); };

  auto P0 = Cache.get(KeyFor(0), Build);
  uint64_t PerEntry = Cache.bytes();
  ASSERT_GT(PerEntry, 0u);

  // Cap at three entries, fill four; the oldest untouched entry goes.
  Cache.setCapacityBytes(3 * PerEntry);
  Cache.get(KeyFor(1), Build);
  Cache.get(KeyFor(2), Build);
  Cache.get(KeyFor(0), Build); // touch 0: entry 1 is now the LRU
  Cache.get(KeyFor(3), Build);
  EXPECT_EQ(Cache.size(), 3u);
  EXPECT_LE(Cache.bytes(), 3 * PerEntry);
  EXPECT_EQ(Cache.evictions(), 1u);

  uint64_t MissesBefore = Cache.misses();
  Cache.get(KeyFor(0), Build); // survived (recently touched)
  Cache.get(KeyFor(3), Build); // survived (newest)
  EXPECT_EQ(Cache.misses(), MissesBefore);
  Cache.get(KeyFor(1), Build); // evicted: re-encodes
  EXPECT_EQ(Cache.misses(), MissesBefore + 1);
  EXPECT_GE(Cache.hits(), 3u);

  // evictToBytes(0) empties the cache entirely.
  uint64_t Freed = Cache.evictToBytes(0);
  EXPECT_GT(Freed, 0u);
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.bytes(), 0u);
}

TEST(PlaintextCacheBudget, GovernorPressureEvictsHalfTheCache) {
  GovernorGuard Guard;
  PlainBackend Plain(6);
  EncodedPlaintextCache<PlainBackend> Cache;
  std::vector<double> Vals(Plain.slotCount(), 2.0);
  for (uint64_t I = 0; I < 8; ++I) {
    EncodedPlaintextCache<PlainBackend>::Key K;
    K.TensorId = I;
    K.Sub = kSubBias;
    Cache.get(K, [&] { return Plain.encode(Vals, 1 << 12); });
  }
  ASSERT_EQ(Cache.size(), 8u);
  uint64_t Before = Cache.bytes();

  // The cache registered itself as a stage-0 reclaimer at construction.
  uint64_t Freed = MemoryGovernor::instance().reclaim(
      MemoryGovernor::StageCacheEvict);
  EXPECT_GE(Freed, Before / 2 - 1);
  EXPECT_LE(Cache.bytes(), Before / 2);
  EXPECT_LE(Cache.size(), 4u);
}

//===----------------------------------------------------------------------===//
// Static footprint prediction vs. measured reality
//===----------------------------------------------------------------------===//

template <typename Backend>
void expectFootprintBounds(const TensorCircuit &Circ,
                           const CompiledCircuit &C, Backend &Bk,
                           const char *What) {
  ASSERT_TRUE(C.Footprint.Analyzed) << What;
  ASSERT_GT(C.Footprint.PeakBytes, 0u) << What;
  EXPECT_GT(C.Footprint.InputBytes, 0u) << What;
  EXPECT_GE(C.Footprint.PeakBytes,
            C.Footprint.InputBytes + C.Footprint.OutputBytes)
      << What << ": the peak must cover at least the I/O frontier";

  TensorLayout L = circuitInputLayout(Circ, C.Policy, Bk.slotCount());
  Tensor3 Image = randomImageFor(Circ, 77);
  auto Enc = encryptTensor(Bk, Image, L, C.Scales);
  LimbPool::instance().resetStats(); // keygen scratch is not request state
  auto Out = evaluateCircuit(Bk, Circ, Enc, C.Scales, C.Policy);
  ASSERT_FALSE(Out.Cts.empty()) << What;
  uint64_t Measured = LimbPool::instance().stats().HighWaterBytes;
  EXPECT_GE(C.Footprint.PeakBytes, Measured)
      << What << ": static prediction must upper-bound the measured "
      << "limb-pool high-water";
}

TEST(FootprintAnalysis, PredictionUpperBoundsMeasuredPoolHighWaterRns) {
  PoolGuard Guard;
  TensorCircuit Circ = smallCircuit();
  CompiledCircuit C = compileSmall(Circ, SchemeKind::RnsCkks);
  RnsCkksBackend Bk = makeRnsBackend(C, 991);
  expectFootprintBounds(Circ, C, Bk, "rns");
}

TEST(FootprintAnalysis, PredictionUpperBoundsMeasuredPoolHighWaterBig) {
  PoolGuard Guard;
  TensorCircuit Circ = smallCircuit();
  CompiledCircuit C = compileSmall(Circ, SchemeKind::BigCkks);
  BigCkksBackend Bk = makeBigBackend(C, 991);
  expectFootprintBounds(Circ, C, Bk, "big");
}

TEST(FootprintAnalysis, ReportIsDeterministicAndNamesHotspots) {
  TensorCircuit Circ = smallCircuit();
  CompiledCircuit C = compileSmall(Circ, SchemeKind::RnsCkks);
  FootprintReport A = analyzeFootprint(Circ, C);
  FootprintReport B = analyzeFootprint(Circ, C);
  EXPECT_EQ(A.PeakBytes, B.PeakBytes);
  EXPECT_EQ(A.PeakNodeId, B.PeakNodeId);
  EXPECT_EQ(A.PerNode.size(), B.PerNode.size());
  EXPECT_FALSE(A.PeakLabel.empty());
  EXPECT_FALSE(A.hotspots().empty());
  EXPECT_NE(A.str().find("static footprint analysis"), std::string::npos);
  // The compiler records the same summary on the artifact.
  EXPECT_EQ(C.Footprint.PeakBytes, A.PeakBytes);
}

//===----------------------------------------------------------------------===//
// bad_alloc containment in the session layer
//===----------------------------------------------------------------------===//

/// HISA adapter that throws std::bad_alloc at scheduled homomorphic-op
/// ordinals (each fires once), modeling a failed allocation inside a
/// kernel. Everything else forwards to the wrapped backend.
template <typename B> class BadAllocBackend {
public:
  using Ct = typename B::Ct;
  using Pt = typename B::Pt;

  BadAllocBackend(B &InnerIn, std::vector<long> FailAtOps)
      : Inner(InnerIn), FailAt(std::move(FailAtOps)) {}

  long opsSeen() const { return Ops; }
  long delivered() const { return Delivered; }

  void beginNode(int NodeId, const std::string &Label) {
    if constexpr (HisaProvenanceSink<B>)
      Inner.beginNode(NodeId, Label);
  }

  size_t slotCount() const { return Inner.slotCount(); }
  Pt encode(const std::vector<double> &V, double S) {
    return Inner.encode(V, S);
  }
  std::vector<double> decode(const Pt &P) const { return Inner.decode(P); }
  Ct encrypt(const Pt &P) { return Inner.encrypt(P); }
  Pt decrypt(const Ct &C) const { return Inner.decrypt(C); }
  Ct copy(const Ct &C) const { return Inner.copy(C); }
  void freeCt(Ct &C) { Inner.freeCt(C); }

  void rotLeftAssign(Ct &C, int S) { op(); Inner.rotLeftAssign(C, S); }
  void rotRightAssign(Ct &C, int S) { op(); Inner.rotRightAssign(C, S); }
  void addAssign(Ct &C, const Ct &O) { op(); Inner.addAssign(C, O); }
  void subAssign(Ct &C, const Ct &O) { op(); Inner.subAssign(C, O); }
  void addPlainAssign(Ct &C, const Pt &P) { op(); Inner.addPlainAssign(C, P); }
  void subPlainAssign(Ct &C, const Pt &P) { op(); Inner.subPlainAssign(C, P); }
  void addScalarAssign(Ct &C, double X) { op(); Inner.addScalarAssign(C, X); }
  void subScalarAssign(Ct &C, double X) { op(); Inner.subScalarAssign(C, X); }
  void mulAssign(Ct &C, const Ct &O) { op(); Inner.mulAssign(C, O); }
  void mulPlainAssign(Ct &C, const Pt &P) { op(); Inner.mulPlainAssign(C, P); }
  void mulScalarAssign(Ct &C, double X, uint64_t S) {
    op();
    Inner.mulScalarAssign(C, X, S);
  }
  uint64_t maxRescale(const Ct &C, uint64_t U) const {
    return Inner.maxRescale(C, U);
  }
  void rescaleAssign(Ct &C, uint64_t D) { op(); Inner.rescaleAssign(C, D); }
  double scaleOf(const Ct &C) const { return Inner.scaleOf(C); }

private:
  void op() {
    long Ordinal = Ops++;
    for (long &F : FailAt)
      if (F == Ordinal) {
        F = -1; // fires once
        ++Delivered;
        throw std::bad_alloc();
      }
  }

  B &Inner;
  std::vector<long> FailAt;
  long Ops = 0;
  long Delivered = 0;
};

TEST(BadAllocContainment, SessionRetriesAfterReclaimByteIdentically) {
  GovernorGuard Guard;
  TensorCircuit Circ = smallCircuit();
  ScaleConfig Scales = plainScales();

  // Failure-free reference.
  PlainBackend RefPlain(10);
  TensorLayout L =
      circuitInputLayout(Circ, LayoutPolicy::AllHW, RefPlain.slotCount());
  Tensor3 Image = randomImageFor(Circ, 9);
  auto RefEnc = encryptTensor(RefPlain, Image, L, Scales);
  auto RefOut =
      evaluateCircuit(RefPlain, Circ, RefEnc, Scales, LayoutPolicy::AllHW);

  // Same run with allocation failures at two op ordinals. The session's
  // bad_alloc handler reclaims and retries the node in place.
  PlainBackend Plain(10);
  BadAllocBackend<PlainBackend> Flaky(Plain, {3, 40});
  SessionConfig SC;
  SC.Retry = fastRetry(3);
  InferenceSession<BadAllocBackend<PlainBackend>> Session(Flaky, Circ, SC);
  auto Enc = retag<BadAllocBackend<PlainBackend>>(
      encryptTensor(Plain, Image, L, Scales));
  CipherTensor<BadAllocBackend<PlainBackend>> Out =
      Session.run(Enc, Scales, LayoutPolicy::AllHW);

  EXPECT_EQ(Flaky.delivered(), 2);
  EXPECT_GE(Session.report().NodeRetries, 2);
  ASSERT_EQ(Out.Cts.size(), RefOut.Cts.size());
  for (size_t I = 0; I < Out.Cts.size(); ++I)
    EXPECT_EQ(Out.Cts[I].Values, RefOut.Cts[I].Values)
        << "ciphertext " << I << " diverged after bad_alloc retry";
  // Each contained failure ran the reclaim ladder.
  EXPECT_GE(MemoryGovernor::instance().stats().Reclaims, 2u);
}

TEST(BadAllocContainment, ExhaustedRetriesSurfaceResourceExhausted) {
  GovernorGuard Guard;
  TensorCircuit Circ = smallCircuit();
  ScaleConfig Scales = plainScales();
  PlainBackend Plain(10);
  // Fail every attempt of the first faulting node: ordinals far enough
  // apart that retries of one node keep hitting fresh scheduled faults.
  std::vector<long> Fails;
  for (long I = 3; I < 200; ++I)
    Fails.push_back(I);
  BadAllocBackend<PlainBackend> Flaky(Plain, Fails);
  SessionConfig SC;
  SC.Retry = fastRetry(2);
  InferenceSession<BadAllocBackend<PlainBackend>> Session(Flaky, Circ, SC);
  TensorLayout L =
      circuitInputLayout(Circ, LayoutPolicy::AllHW, Plain.slotCount());
  auto Enc = retag<BadAllocBackend<PlainBackend>>(
      encryptTensor(Plain, randomImageFor(Circ, 9), L, Scales));
  try {
    Session.run(Enc, Scales, LayoutPolicy::AllHW);
    FAIL() << "expected ResourceExhaustedError";
  } catch (const ChetError &E) {
    EXPECT_EQ(E.code(), ErrorCode::ResourceExhausted);
    EXPECT_TRUE(E.isTransient()) << "resubmission is expected to succeed";
    EXPECT_NE(std::string(E.what()).find("allocation failure"),
              std::string::npos);
  }
}

//===----------------------------------------------------------------------===//
// Budget-aware server admission
//===----------------------------------------------------------------------===//

TEST(ServerMemory, ImpossibleFootprintIsRejectedTyped) {
  GovernorGuard Guard;
  TensorCircuit Circ = smallCircuit();
  PlainBackend Plain(10);
  TensorLayout L =
      circuitInputLayout(Circ, LayoutPolicy::AllHW, Plain.slotCount());
  Tensor3 Image = randomImageFor(Circ, 11);

  ServerConfig Cfg;
  Cfg.Lanes = 1;
  Cfg.MemoryBudgetBytes = 1 << 20;
  InferenceServer<PlainBackend> Server(Cfg);
  TenantOptions Big;
  Big.Scales = plainScales();
  Big.PredictedPeakBytes = 2 << 20; // can never fit the 1 MB budget
  TenantOptions Small;
  Small.Scales = plainScales();
  Small.PredictedPeakBytes = 512 << 10;
  PlainBackend Plain2(10);
  Server.registerTenant("giant", Plain, Circ, Big);
  Server.registerTenant("modest", Plain2, Circ, Small);

  RequestTicket Rejected =
      Server.submit("giant", encryptTensor(Plain, Image, L, plainScales()));
  const ServerResponse &R = Rejected.wait();
  EXPECT_EQ(R.Status, RequestStatus::Rejected);
  EXPECT_EQ(R.Code, ErrorCode::ResourceExhausted);
  EXPECT_EQ(R.Class, FaultClass::Transient);

  RequestTicket Ok =
      Server.submit("modest", encryptTensor(Plain2, Image, L, plainScales()));
  EXPECT_EQ(Ok.wait().Status, RequestStatus::Completed);

  ServerReport Rep = Server.shutdown();
  for (const TenantReport &T : Rep.Tenants) {
    if (T.Tenant == "giant") {
      EXPECT_EQ(T.RejectedMemory, 1u);
      EXPECT_EQ(T.rejected(), 1u);
      EXPECT_EQ(T.PeakReservedBytes, 0u);
    } else {
      EXPECT_EQ(T.RejectedMemory, 0u);
      EXPECT_EQ(T.Completed, 1u);
      EXPECT_EQ(T.PeakReservedBytes, uint64_t(512 << 10));
    }
  }
  EXPECT_EQ(Rep.Governor.BudgetBytes, uint64_t(1 << 20));
  EXPECT_LE(Rep.Governor.HighWaterBytes, Rep.Governor.BudgetBytes);
  EXPECT_NE(Rep.str().find("memory governor"), std::string::npos);
}

TEST(ServerMemory, CoTenantsSerializeUnderTightBudgetAndAllComplete) {
  GovernorGuard Guard;
  TensorCircuit Circ = smallCircuit();
  constexpr uint64_t Pred = 600 << 10;

  ServerConfig Cfg;
  Cfg.Lanes = 2;
  // Both tenants fit alone; together they would overcommit. Dispatch
  // must serialize them and still complete everything.
  Cfg.MemoryBudgetBytes = 1 << 20;
  InferenceServer<PlainBackend> Server(Cfg);
  PlainBackend A(10), Bk(10);
  TenantOptions TO;
  TO.Scales = plainScales();
  TO.PredictedPeakBytes = Pred;
  Server.registerTenant("a", A, Circ, TO);
  Server.registerTenant("b", Bk, Circ, TO);
  TensorLayout L =
      circuitInputLayout(Circ, LayoutPolicy::AllHW, A.slotCount());
  Tensor3 Image = randomImageFor(Circ, 12);

  Server.pause();
  std::vector<RequestTicket> Tickets;
  for (int I = 0; I < 4; ++I) {
    Tickets.push_back(
        Server.submit("a", encryptTensor(A, Image, L, plainScales())));
    Tickets.push_back(
        Server.submit("b", encryptTensor(Bk, Image, L, plainScales())));
  }
  Server.resume();
  for (RequestTicket &T : Tickets)
    EXPECT_EQ(T.wait().Status, RequestStatus::Completed);

  ServerReport Rep = Server.shutdown();
  EXPECT_EQ(Rep.Completed, 8u);
  EXPECT_EQ(Rep.Failed, 0u);
  EXPECT_LE(Rep.Governor.HighWaterBytes, Rep.Governor.BudgetBytes)
      << "reservations must never overcommit the budget";
  EXPECT_EQ(Rep.Governor.HighWaterBytes, Pred)
      << "only one tenant's footprint may be reserved at a time";
  EXPECT_EQ(Rep.Governor.ReservedBytes, 0u)
      << "every reservation was released";
}

TEST(ServerMemory, PressureShedsNewestWithResourceExhausted) {
  GovernorGuard Guard;
  MemoryGovernor &G = MemoryGovernor::instance();
  TensorCircuit Circ = smallCircuit();

  ServerConfig Cfg;
  Cfg.Lanes = 1;
  Cfg.QueueHighWater = 4; // pressure shed starts at depth 2
  Cfg.MemoryBudgetBytes = 1 << 20;
  InferenceServer<PlainBackend> Server(Cfg);
  PlainBackend Plain(10);
  TenantOptions TO;
  TO.Scales = plainScales();
  Server.registerTenant("alice", Plain, Circ, TO);
  TensorLayout L =
      circuitInputLayout(Circ, LayoutPolicy::AllHW, Plain.slotCount());
  Tensor3 Image = randomImageFor(Circ, 13);

  // An external reservation pushes the governor over its watermark.
  ASSERT_TRUE(G.tryReserve(900 << 10));
  ASSERT_TRUE(G.underPressure());

  Server.pause();
  std::vector<RequestTicket> Tickets;
  for (int I = 0; I < 4; ++I)
    Tickets.push_back(
        Server.submit("alice", encryptTensor(Plain, Image, L, plainScales())));
  // Depth 0 and 1 were admitted; depth >= 2 under pressure is shed.
  G.release(900 << 10);
  Server.resume();

  int Completed = 0, Shed = 0;
  for (RequestTicket &T : Tickets) {
    const ServerResponse &R = T.wait();
    if (R.Status == RequestStatus::Completed) {
      ++Completed;
    } else {
      EXPECT_EQ(R.Status, RequestStatus::Rejected);
      EXPECT_EQ(R.Code, ErrorCode::ResourceExhausted);
      ++Shed;
    }
  }
  EXPECT_EQ(Completed, 2);
  EXPECT_EQ(Shed, 2);
  ServerReport Rep = Server.shutdown();
  ASSERT_EQ(Rep.Tenants.size(), 1u);
  EXPECT_EQ(Rep.Tenants[0].RejectedMemory, 2u);
}

//===----------------------------------------------------------------------===//
// Constrained chaos soak: budget + faults, still byte-identical
//===----------------------------------------------------------------------===//

using RnsInteg = IntegrityBackend<RnsCkksBackend>;
using RnsChaos = FaultInjectionBackend<RnsInteg>;

TEST(ServerMemory, ConstrainedChaosSoakStaysByteIdentical) {
  GovernorGuard Guard;
  PoolGuard Pool;
  TensorCircuit Circ = smallCircuit();
  CompiledCircuit C = compileSmall(Circ, SchemeKind::RnsCkks);
  ASSERT_TRUE(C.Footprint.Analyzed);
  const uint64_t Pred = C.Footprint.PeakBytes;

  std::vector<Tensor3> Images;
  for (uint64_t S = 0; S < 3; ++S)
    Images.push_back(randomImageFor(Circ, 300 + S));

  // Fault-free reference bytes through the same integrity stack.
  std::vector<std::vector<ByteBuffer>> Refs;
  {
    RnsCkksBackend Raw = makeRnsBackend(C, 991);
    RnsInteg Integ(Raw);
    TensorLayout L = circuitInputLayout(Circ, C.Policy, Integ.slotCount());
    for (const Tensor3 &Image : Images) {
      auto Enc = encryptTensor(Integ, Image, L, C.Scales);
      auto Res = evaluateCircuit(Integ, Circ, Enc, C.Scales, C.Policy);
      std::vector<ByteBuffer> Bytes;
      for (const auto &Ct : Res.Cts)
        Bytes.push_back(serialize(Ct));
      Refs.push_back(std::move(Bytes));
    }
  }

  // Two chaos tenants under a budget that admits one footprint at a
  // time: requests serialize, faults retry, and every completed
  // response still matches the fault-free bytes exactly.
  FaultPlan Plan;
  Plan.Seed = 0x90f;
  Plan.TransientRate = 0.01;
  Plan.MaxTransientFaults = 3;

  ServerConfig Cfg;
  Cfg.Lanes = 2;
  Cfg.Retry = fastRetry(4);
  Cfg.MemoryBudgetBytes = Pred + Pred / 2; // < 2x: one request at a time
  InferenceServer<RnsChaos> Server(Cfg);

  std::vector<std::unique_ptr<RnsCkksBackend>> Raws;
  std::vector<std::unique_ptr<RnsInteg>> Integs;
  std::vector<std::unique_ptr<RnsChaos>> Chaoses;
  TensorLayout L;
  for (const char *Id : {"t0", "t1"}) {
    Raws.push_back(
        std::make_unique<RnsCkksBackend>(makeRnsBackend(C, 991)));
    Integs.push_back(std::make_unique<RnsInteg>(*Raws.back()));
    Chaoses.push_back(std::make_unique<RnsChaos>(*Integs.back(), Plan));
    Chaoses.back()->setFaultScope(std::string("tenant:") + Id);
    TenantOptions TO;
    TO.Scales = C.Scales;
    TO.Policy = C.Policy;
    TO.PredictedPeakBytes = Pred;
    Server.registerTenant(Id, *Chaoses.back(), Circ, TO);
    L = circuitInputLayout(Circ, C.Policy, Chaoses.back()->slotCount());
  }

  std::vector<std::pair<size_t, RequestTicket>> Tickets;
  for (size_t R = 0; R < Images.size(); ++R)
    for (size_t TI = 0; TI < 2; ++TI) {
      auto Enc = retag<RnsChaos>(
          encryptTensor(*Integs[TI], Images[R], L, C.Scales));
      Tickets.emplace_back(
          TI, Server.submit(TI == 0 ? "t0" : "t1", std::move(Enc)));
    }

  std::vector<size_t> Seen(2, 0);
  for (auto &[TI, Ticket] : Tickets) {
    const ServerResponse &R = Ticket.wait();
    ASSERT_EQ(R.Status, RequestStatus::Completed)
        << "tenant=" << TI << ": " << R.Message;
    const std::vector<ByteBuffer> &Want = Refs[Seen[TI]];
    ASSERT_EQ(Want.size(), R.Output.size());
    for (size_t I = 0; I < Want.size(); ++I)
      EXPECT_EQ(Want[I], R.Output[I])
          << "tenant=" << TI << " request=" << Seen[TI]
          << " ciphertext=" << I << " diverged under budget+chaos";
    ++Seen[TI];
  }

  ServerReport Rep = Server.shutdown();
  EXPECT_EQ(Rep.Completed, 6u);
  EXPECT_EQ(Rep.Failed, 0u);
  EXPECT_LE(Rep.Governor.HighWaterBytes, Rep.Governor.BudgetBytes);
  EXPECT_EQ(Rep.Governor.HighWaterBytes, Pred)
      << "the budget admits exactly one predicted footprint at a time";
  EXPECT_GT(Chaoses[0]->stats().TransientFaults +
                Chaoses[1]->stats().TransientFaults,
            0)
      << "the chaos plan must actually have fired";
}

} // namespace
