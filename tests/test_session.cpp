//===- test_session.cpp - Chaos-soak tests for InferenceSession ------------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chaos-soak harness for the checkpointed, deadline-aware inference
/// session (runtime/Session.h). The central property under test: for any
/// seeded fault schedule -- transient op failures, bit flips, simulated
/// process crashes -- a checkpointed session's final ciphertexts are
/// *byte-identical* (serialized compare) to the fault-free run, on both
/// CKKS schemes, at 1/2/8 threads, while replaying only the circuit
/// suffix after a crash. Plus: checkpoint codec/store hardening, policy
/// accounting, deadline determinism, and fault provenance.
///
//===----------------------------------------------------------------------===//

#include "runtime/Session.h"

#include "ckks/BigCkks.h"
#include "ckks/RnsCkks.h"
#include "ckks/Serialization.h"
#include "core/Compiler.h"
#include "hisa/FaultInjectionBackend.h"
#include "hisa/IntegrityBackend.h"
#include "hisa/PlainBackend.h"
#include "hisa/ProfilingBackend.h"
#include "nn/Networks.h"
#include "runtime/ReferenceOps.h"
#include "support/Prng.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <type_traits>
#include <unistd.h>

using namespace chet;

// Every backend the session checkpoints must round-trip its ciphertexts
// through the ADL serialization pair.
static_assert(SessionCheckpointable<RnsCkksBackend>);
static_assert(SessionCheckpointable<BigCkksBackend>);
static_assert(SessionCheckpointable<PlainBackend>);
static_assert(SessionCheckpointable<IntegrityBackend<RnsCkksBackend>>);
static_assert(
    SessionCheckpointable<FaultInjectionBackend<IntegrityBackend<RnsCkksBackend>>>);

namespace {

struct PoolGuard {
  ~PoolGuard() { setGlobalThreadCount(0); }
};

/// Small conv -> act -> pool -> FC circuit (the same shape
/// test_compiler.cpp uses) with layer labels, fast under real encryption.
TensorCircuit smallCircuit(uint64_t Seed = 50) {
  Prng Rng(Seed);
  TensorCircuit Circ("session-tiny");
  ConvWeights Conv(2, 1, 3, 3);
  for (double &V : Conv.W)
    V = Rng.nextDouble(-0.5, 0.5);
  FcWeights Fc(4, 2 * 4 * 4);
  for (double &V : Fc.W)
    V = Rng.nextDouble(-0.3, 0.3);
  int X = Circ.input(1, 8, 8);
  Circ.setLabel(X, "in");
  X = Circ.conv2d(X, Conv, 1, 1);
  Circ.setLabel(X, "conv1");
  X = Circ.polyActivation(X, 0.25, 0.5);
  Circ.setLabel(X, "act1");
  X = Circ.averagePool(X, 2, 2);
  Circ.setLabel(X, "pool1");
  X = Circ.fullyConnected(X, Fc);
  Circ.setLabel(X, "fc1");
  Circ.output(X);
  return Circ;
}

CompiledCircuit compileSmall(const TensorCircuit &Circ, SchemeKind Scheme) {
  CompilerOptions O;
  O.Scheme = Scheme;
  O.Security = SecurityLevel::Classical128;
  O.Scales = ScaleConfig::fromExponents(25, 25, 25, 12);
  return compileCircuit(Circ, O);
}

/// Re-tags a tensor encrypted through an inner backend for use with a
/// wrapper stack sharing the same ciphertext type (models input that
/// arrived over an integrity-protected wire: the fault layer never
/// touches it).
template <typename To, typename From>
CipherTensor<To> retag(CipherTensor<From> T) {
  static_assert(std::is_same_v<typename To::Ct, typename From::Ct>);
  CipherTensor<To> Out;
  Out.L = T.L;
  Out.Cts = std::move(T.Cts);
  return Out;
}

template <typename CtVec> std::vector<ByteBuffer> serializeAll(const CtVec &Cts) {
  std::vector<ByteBuffer> Bytes;
  for (const auto &Ct : Cts)
    Bytes.push_back(serialize(Ct));
  return Bytes;
}

using RnsInteg = IntegrityBackend<RnsCkksBackend>;
using RnsChaos = FaultInjectionBackend<RnsInteg>;
using BigInteg = IntegrityBackend<BigCkksBackend>;
using BigChaos = FaultInjectionBackend<BigInteg>;

constexpr uint64_t BackendSeed = 991;

/// Fault-free reference bytes: fresh seeded backend, integrity layer (so
/// the op sequence matches the chaos stack exactly), plain
/// evaluateCircuit.
std::vector<ByteBuffer> rnsReference(const TensorCircuit &Circ,
                                     const CompiledCircuit &C,
                                     const Tensor3 &Image) {
  RnsCkksBackend Raw = makeRnsBackend(C, BackendSeed);
  RnsInteg Integ(Raw);
  TensorLayout L = circuitInputLayout(Circ, C.Policy, Integ.slotCount());
  auto Enc = encryptTensor(Integ, Image, L, C.Scales);
  auto Out = evaluateCircuit(Integ, Circ, Enc, C.Scales, C.Policy);
  return serializeAll(Out.Cts);
}

struct ChaosOutcome {
  std::vector<ByteBuffer> Bytes;
  SessionReport Rep;
  FaultStats Faults;
};

/// One chaos-soak session run. The input is encrypted through the
/// integrity layer only -- it models data that arrived over an
/// integrity-protected wire; the fault plan applies to server-side
/// compute.
ChaosOutcome rnsChaosRun(const TensorCircuit &Circ, const CompiledCircuit &C,
                         const Tensor3 &Image, const FaultPlan &Plan,
                         SessionConfig Cfg, unsigned Threads) {
  setGlobalThreadCount(Threads);
  RnsCkksBackend Raw = makeRnsBackend(C, BackendSeed);
  RnsInteg Integ(Raw);
  RnsChaos Chaos(Integ, Plan);
  TensorLayout L = circuitInputLayout(Circ, C.Policy, Chaos.slotCount());
  auto Enc = retag<RnsChaos>(encryptTensor(Integ, Image, L, C.Scales));
  InferenceSession<RnsChaos> Sess(Chaos, Circ, Cfg);
  auto Out = Sess.run(Enc, C.Scales, C.Policy);
  return {serializeAll(Out.Cts), Sess.report(), Chaos.stats()};
}

void expectSameBytes(const std::vector<ByteBuffer> &Want,
                     const std::vector<ByteBuffer> &Got, const char *What) {
  ASSERT_EQ(Want.size(), Got.size()) << What;
  for (size_t I = 0; I < Want.size(); ++I)
    EXPECT_EQ(Want[I], Got[I]) << What << ": ciphertext " << I << " differs";
}

//===----------------------------------------------------------------------===//
// Zero-behavior-change and chaos byte-identity (RNS-CKKS)
//===----------------------------------------------------------------------===//

TEST(Session, FaultFreeRunMatchesEvaluateCircuitAtAllThreadCounts) {
  PoolGuard Guard;
  TensorCircuit Circ = smallCircuit();
  CompiledCircuit C = compileSmall(Circ, SchemeKind::RnsCkks);
  Tensor3 Image = randomImageFor(Circ, 41);
  std::vector<ByteBuffer> Ref = rnsReference(Circ, C, Image);

  MemoryCheckpointStore Store;
  for (unsigned Threads : {1u, 2u, 8u}) {
    // No checkpointing, no deadline: the session must be a transparent
    // wrapper around evaluateCircuit.
    ChaosOutcome Plainly =
        rnsChaosRun(Circ, C, Image, FaultPlan{}, SessionConfig{}, Threads);
    expectSameBytes(Ref, Plainly.Bytes, "transparent session");
    EXPECT_TRUE(Plainly.Rep.Succeeded);
    EXPECT_EQ(Plainly.Rep.Restarts, 0);
    EXPECT_EQ(Plainly.Rep.CheckpointsTaken, 0);
    EXPECT_EQ(Plainly.Rep.NodesExecuted,
              static_cast<int>(Circ.ops().size()) - 1);

    // Checkpointing on, still fault-free: identical bytes, checkpoints
    // taken but never restored.
    Store.clear();
    SessionConfig Cfg;
    Cfg.Checkpoint = CheckpointPolicy::everyNode();
    Cfg.Store = &Store;
    Cfg.IntegrityCheckEveryNodes = 1;
    ChaosOutcome Ckpt = rnsChaosRun(Circ, C, Image, FaultPlan{}, Cfg, Threads);
    expectSameBytes(Ref, Ckpt.Bytes, "checkpointed fault-free session");
    EXPECT_GT(Ckpt.Rep.CheckpointsTaken, 0);
    EXPECT_EQ(Ckpt.Rep.CheckpointsRestored, 0);
    EXPECT_GT(Ckpt.Rep.CheckpointBytes, 0u);
    EXPECT_GT(Store.bytesStored(), 0u);
  }
}

TEST(Session, SeededChaosScheduleRecoversByteIdenticalAcrossThreads) {
  PoolGuard Guard;
  TensorCircuit Circ = smallCircuit();
  CompiledCircuit C = compileSmall(Circ, SchemeKind::RnsCkks);
  Tensor3 Image = randomImageFor(Circ, 42);
  std::vector<ByteBuffer> Ref = rnsReference(Circ, C, Image);

  // Probe the clean run's homomorphic op count so the crash schedule can
  // target the back half of the circuit.
  long TotalOps =
      rnsChaosRun(Circ, C, Image, FaultPlan{}, SessionConfig{}, 1)
          .Faults.OpsSeen;
  ASSERT_GT(TotalOps, 10);

  FaultPlan Plan;
  Plan.Seed = 0xc7a05;
  Plan.TransientRate = 0.004;
  Plan.MaxTransientFaults = 2;
  Plan.BitFlipRate = 0.004;
  Plan.MaxBitFlips = 2;
  Plan.CrashAtOps = {TotalOps / 2, (TotalOps * 8) / 10};

  for (unsigned Threads : {1u, 2u, 8u}) {
    MemoryCheckpointStore Store;
    SessionConfig Cfg;
    Cfg.Checkpoint = CheckpointPolicy::everyN(2);
    Cfg.Store = &Store;
    Cfg.IntegrityCheckEveryNodes = 1;
    Cfg.Retry.MaxAttempts = 4;
    Cfg.Retry.BackoffBaseSeconds = 1e-6; // keep the soak fast
    ChaosOutcome Out = rnsChaosRun(Circ, C, Image, Plan, Cfg, Threads);
    expectSameBytes(Ref, Out.Bytes, "chaos session");
    EXPECT_TRUE(Out.Rep.Succeeded);
    EXPECT_EQ(Out.Faults.Crashes, 2) << "both scheduled crashes must fire";
    EXPECT_GE(Out.Rep.Restarts, 2);
    EXPECT_GT(Out.Rep.CheckpointsRestored, 0);
    EXPECT_FALSE(Out.Rep.Faults.empty());
  }
}

TEST(Session, CrashRecoveryReplaysOnlyTheSuffix) {
  PoolGuard Guard;
  setGlobalThreadCount(1);
  TensorCircuit Circ = smallCircuit();
  CompiledCircuit C = compileSmall(Circ, SchemeKind::RnsCkks);
  Tensor3 Image = randomImageFor(Circ, 43);
  std::vector<ByteBuffer> Ref = rnsReference(Circ, C, Image);

  using Prof = ProfilingBackend<RnsCkksBackend>;
  using ProfInteg = IntegrityBackend<Prof>;
  using ProfChaos = FaultInjectionBackend<ProfInteg>;

  // Counts the scheme-level ops of one session run under the given
  // checkpoint policy, crashing ~80% through the clean op schedule.
  auto CountOps = [&](const FaultPlan &Plan, const CheckpointPolicy &Policy,
                      MemoryCheckpointStore *Store, SessionReport *RepOut) {
    RnsCkksBackend Raw = makeRnsBackend(C, BackendSeed);
    Prof Profiled(Raw);
    ProfInteg Integ(Profiled);
    ProfChaos Chaos(Integ, Plan);
    TensorLayout L = circuitInputLayout(Circ, C.Policy, Chaos.slotCount());
    auto Enc = retag<ProfChaos>(encryptTensor(Integ, Image, L, C.Scales));
    uint64_t OpsBeforeEval = Profiled.totalOps();
    SessionConfig Cfg;
    Cfg.Checkpoint = Policy;
    Cfg.Store = Store;
    InferenceSession<ProfChaos> Sess(Chaos, Circ, Cfg);
    auto Out = Sess.run(Enc, C.Scales, C.Policy);
    if (RepOut)
      *RepOut = Sess.report();
    expectSameBytes(Ref, serializeAll(Out.Cts), "profiled chaos session");
    return Profiled.totalOps() - OpsBeforeEval;
  };

  uint64_t CleanOps =
      CountOps(FaultPlan{}, CheckpointPolicy::off(), nullptr, nullptr);
  long Probe = rnsChaosRun(Circ, C, Image, FaultPlan{}, SessionConfig{}, 1)
                   .Faults.OpsSeen;

  FaultPlan CrashPlan;
  CrashPlan.CrashAtOps = {(Probe * 8) / 10};

  MemoryCheckpointStore Store;
  SessionReport RepOn, RepOff;
  uint64_t OpsOn = CountOps(CrashPlan, CheckpointPolicy::everyNode(), &Store,
                            &RepOn);
  uint64_t OpsOff =
      CountOps(CrashPlan, CheckpointPolicy::off(), nullptr, &RepOff);

  // Without checkpoints the crash forces a full restart (~180% of the
  // clean op count); with per-node checkpoints only the suffix replays.
  EXPECT_EQ(RepOn.Restarts, 1);
  EXPECT_EQ(RepOn.CheckpointsRestored, 1);
  EXPECT_EQ(RepOff.CheckpointsRestored, 0);
  EXPECT_LT(RepOn.NodesReplayed, RepOff.NodesReplayed);
  EXPECT_LT(OpsOn, OpsOff);
  EXPECT_LT(OpsOn, CleanOps + (CleanOps * 6) / 10)
      << "checkpointed recovery must not approach a full re-run";
}

TEST(Session, BitFlipIsCaughtAtTheLayerAndRolledBack) {
  PoolGuard Guard;
  TensorCircuit Circ = smallCircuit();
  CompiledCircuit C = compileSmall(Circ, SchemeKind::RnsCkks);
  Tensor3 Image = randomImageFor(Circ, 44);
  std::vector<ByteBuffer> Ref = rnsReference(Circ, C, Image);

  FaultPlan Plan;
  Plan.Seed = 0xb17f11b;
  Plan.BitFlipRate = 0.02;
  Plan.MaxBitFlips = 2;

  MemoryCheckpointStore Store;
  SessionConfig Cfg;
  Cfg.Checkpoint = CheckpointPolicy::everyNode();
  Cfg.Store = &Store;
  Cfg.IntegrityCheckEveryNodes = 1;
  ChaosOutcome Out = rnsChaosRun(Circ, C, Image, Plan, Cfg, 1);

  expectSameBytes(Ref, Out.Bytes, "bit-flip recovery");
  EXPECT_GE(Out.Faults.BitFlips, 1);
  EXPECT_GE(Out.Rep.Restarts, 1);
  // The corruption surfaced as a typed Corruption fault with layer
  // provenance, not as garbage in the output.
  bool SawCorruption = false;
  for (const FaultEvent &F : Out.Rep.Faults)
    if (F.Class == FaultClass::Corruption) {
      SawCorruption = true;
      EXPECT_GE(F.NodeId, 0);
      EXPECT_FALSE(F.Layer.empty());
    }
  EXPECT_TRUE(SawCorruption);
  // And the injector recorded where it struck.
  ASSERT_FALSE(Out.Faults.Sites.empty());
  EXPECT_FALSE(Out.Faults.Sites[0].Label.empty());
}

//===----------------------------------------------------------------------===//
// Big-CKKS chaos
//===----------------------------------------------------------------------===//

TEST(Session, BigCkksChaosRecoversByteIdentical) {
  PoolGuard Guard;
  setGlobalThreadCount(1);
  TensorCircuit Circ = smallCircuit();
  CompiledCircuit C = compileSmall(Circ, SchemeKind::BigCkks);

  Tensor3 Image = randomImageFor(Circ, 45);
  auto Run = [&](const FaultPlan &Plan, SessionConfig Cfg,
                 SessionReport *RepOut) {
    BigCkksBackend Raw = makeBigBackend(C, BackendSeed);
    BigInteg Integ(Raw);
    BigChaos Chaos(Integ, Plan);
    TensorLayout L = circuitInputLayout(Circ, C.Policy, Chaos.slotCount());
    auto Enc = retag<BigChaos>(encryptTensor(Integ, Image, L, C.Scales));
    InferenceSession<BigChaos> Sess(Chaos, Circ, Cfg);
    auto Out = Sess.run(Enc, C.Scales, C.Policy);
    if (RepOut)
      *RepOut = Sess.report();
    return serializeAll(Out.Cts);
  };

  std::vector<ByteBuffer> Ref = Run(FaultPlan{}, SessionConfig{}, nullptr);
  long TotalOps = 0;
  {
    BigCkksBackend Raw = makeBigBackend(C, BackendSeed);
    BigInteg Integ(Raw);
    BigChaos Chaos(Integ, FaultPlan{});
    TensorLayout L = circuitInputLayout(Circ, C.Policy, Chaos.slotCount());
    auto Enc = retag<BigChaos>(encryptTensor(Integ, Image, L, C.Scales));
    InferenceSession<BigChaos> Sess(Chaos, Circ, SessionConfig{});
    (void)Sess.run(Enc, C.Scales, C.Policy);
    TotalOps = Chaos.stats().OpsSeen;
  }

  FaultPlan Plan;
  Plan.Seed = 0xb16;
  Plan.TransientRate = 0.01;
  Plan.MaxTransientFaults = 1;
  Plan.CrashAtOps = {(TotalOps * 7) / 10};

  MemoryCheckpointStore Store;
  SessionConfig Cfg;
  Cfg.Checkpoint = CheckpointPolicy::everyN(2);
  Cfg.Store = &Store;
  Cfg.Retry.BackoffBaseSeconds = 1e-6;
  SessionReport Rep;
  std::vector<ByteBuffer> Got = Run(Plan, Cfg, &Rep);
  expectSameBytes(Ref, Got, "big-CKKS chaos session");
  EXPECT_TRUE(Rep.Succeeded);
  EXPECT_EQ(Rep.Restarts, 1);
  EXPECT_EQ(Rep.CheckpointsRestored, 1);
}

//===----------------------------------------------------------------------===//
// Deadlines
//===----------------------------------------------------------------------===//

TEST(Session, DeadlineOverrunAbortsDeterministically) {
  PoolGuard Guard;
  TensorCircuit Circ = makeLeNet5Small(/*Reduction=*/2);
  PlainBackend Backend(12);
  ScaleConfig S;
  TensorLayout L =
      circuitInputLayout(Circ, LayoutPolicy::AllHW, Backend.slotCount());
  Tensor3 Image = randomImageFor(Circ, 46);
  auto Enc = encryptTensor(Backend, Image, L, S);

  for (int Round = 0; Round < 2; ++Round) {
    SessionConfig Cfg;
    Cfg.TimeBudgetSeconds = 1e-9; // expired before the first node
    InferenceSession<PlainBackend> Sess(Backend, Circ, Cfg);
    try {
      (void)Sess.run(Enc, S, LayoutPolicy::AllHW);
      FAIL() << "expected a deadline abort";
    } catch (const ChetError &E) {
      EXPECT_EQ(E.code(), ErrorCode::DeadlineExceeded);
      EXPECT_EQ(E.faultClass(), FaultClass::Deadline);
    }
    EXPECT_TRUE(Sess.report().DeadlineExpired);
    EXPECT_FALSE(Sess.report().Succeeded);
    EXPECT_EQ(Sess.report().NodesExecuted, 0);
  }

  // No budget configured: zero behavior change, the same session shape
  // completes.
  InferenceSession<PlainBackend> Free(Backend, Circ, SessionConfig{});
  auto Out = Free.run(Enc, S, LayoutPolicy::AllHW);
  EXPECT_TRUE(Free.report().Succeeded);
  EXPECT_FALSE(Free.report().DeadlineExpired);
  EXPECT_EQ(Out.Cts.size(), static_cast<size_t>(Out.L.ctCount()));
}

TEST(Session, ParallelReduceObservesTheDeadline) {
  PoolGuard Guard;
  setGlobalThreadCount(2);
  PlainBackend Backend(12);
  ScaleConfig S;
  Tensor3 In(1, 8, 8);
  for (double &V : In.Data)
    V = 0.25;
  FcWeights Fc(4, 64);
  for (double &V : Fc.W)
    V = 0.1;
  TensorLayout L =
      makeInputLayout(LayoutKind::HW, 1, 8, 8, 0, Backend.slotCount());
  auto Enc = encryptTensor(Backend, In, L, S);
  // The kernel runs fine without a deadline...
  (void)fullyConnectedReplicate(Backend, Enc, Fc, S);
  // ...and aborts inside the neuron fold (not the session's node loop)
  // once an expired deadline is installed on the calling thread.
  DeadlineScope Scope(Deadline::afterSeconds(-1.0));
  EXPECT_THROW((void)fullyConnectedReplicate(Backend, Enc, Fc, S),
               DeadlineExceededError);
}

//===----------------------------------------------------------------------===//
// Checkpoint policy accounting and store hardening
//===----------------------------------------------------------------------===//

TEST(Session, CheckpointPolicyAccounting) {
  PoolGuard Guard;
  TensorCircuit Circ = makeLeNet5Small(/*Reduction=*/2);
  PlainBackend Backend(12);
  ScaleConfig S;
  TensorLayout L =
      circuitInputLayout(Circ, LayoutPolicy::AllHW, Backend.slotCount());
  Tensor3 Image = randomImageFor(Circ, 47);
  auto Enc = encryptTensor(Backend, Image, L, S);
  int NonOutputNodes = static_cast<int>(Circ.ops().size()) - 1;

  auto TakenUnder = [&](CheckpointPolicy Policy) {
    MemoryCheckpointStore Store;
    SessionConfig Cfg;
    Cfg.Checkpoint = Policy;
    Cfg.Store = &Store;
    InferenceSession<PlainBackend> Sess(Backend, Circ, Cfg);
    (void)Sess.run(Enc, S, LayoutPolicy::AllHW);
    EXPECT_TRUE(Sess.report().Succeeded);
    return Sess.report().CheckpointsTaken;
  };

  EXPECT_EQ(TakenUnder(CheckpointPolicy::everyNode()), NonOutputNodes);

  // EveryN: due when K - LastCkptNode >= N starting from LastCkptNode=-1.
  int Expected = 0;
  for (int K = 0, Last = -1; K < NonOutputNodes; ++K)
    if (K - Last >= 3) {
      ++Expected;
      Last = K;
    }
  EXPECT_EQ(TakenUnder(CheckpointPolicy::everyN(3)), Expected);

  // A huge byte floor throttles EveryNode down to the initial checkpoint.
  CheckpointPolicy Throttled = CheckpointPolicy::everyNode();
  Throttled.MinBytesBetween = uint64_t(1) << 40;
  EXPECT_EQ(TakenUnder(Throttled), 1);
}

TEST(Session, CorruptCheckpointsAreDiscardedGracefully) {
  PoolGuard Guard;
  TensorCircuit Circ = makeLeNet5Small(/*Reduction=*/2);
  ScaleConfig S;
  Tensor3 Image = randomImageFor(Circ, 48);

  using PlainChaos = FaultInjectionBackend<PlainBackend>;
  MemoryCheckpointStore Store;
  auto Run = [&](const FaultPlan &Plan, CheckpointPolicy Policy,
                 SessionReport *RepOut) {
    PlainBackend Backend(12);
    PlainChaos Chaos(Backend, Plan);
    TensorLayout L =
        circuitInputLayout(Circ, LayoutPolicy::AllHW, Chaos.slotCount());
    auto Enc = retag<PlainChaos>(encryptTensor(Backend, Image, L, S));
    SessionConfig Cfg;
    Cfg.Checkpoint = Policy;
    Cfg.Store = &Store;
    InferenceSession<PlainChaos> Sess(Chaos, Circ, Cfg);
    auto Out = Sess.run(Enc, S, LayoutPolicy::AllHW);
    if (RepOut)
      *RepOut = Sess.report();
    return serializeAll(Out.Cts);
  };

  // Populate the store with a clean run, probe its op count, then rot
  // every stored blob.
  std::vector<ByteBuffer> Ref =
      Run(FaultPlan{}, CheckpointPolicy::everyNode(), nullptr);
  long TotalOps;
  {
    PlainBackend Backend(12);
    PlainChaos Chaos(Backend, FaultPlan{});
    TensorLayout L =
        circuitInputLayout(Circ, LayoutPolicy::AllHW, Chaos.slotCount());
    auto Enc = retag<PlainChaos>(encryptTensor(Backend, Image, L, S));
    InferenceSession<PlainChaos> Sess(Chaos, Circ, SessionConfig{});
    (void)Sess.run(Enc, S, LayoutPolicy::AllHW);
    TotalOps = Chaos.stats().OpsSeen;
  }
  EXPECT_GT(Store.corruptAllBlobs(/*BitIndex=*/6151), 0u);

  // The crash run sees the same keys (identical circuit, input bytes,
  // scales, policy) but, throttled by a huge byte floor, only rewrites
  // the node-0 checkpoint. Recovery therefore walks the rotten newer
  // blobs newest-first, rejects each on checksum, and lands on the one
  // fresh checkpoint -- still byte-identical output.
  CheckpointPolicy Throttled = CheckpointPolicy::everyNode();
  Throttled.MinBytesBetween = uint64_t(1) << 40;
  FaultPlan CrashPlan;
  CrashPlan.CrashAtOps = {(TotalOps * 3) / 4};
  SessionReport Rep;
  std::vector<ByteBuffer> Got = Run(CrashPlan, Throttled, &Rep);
  expectSameBytes(Ref, Got, "rotten-store recovery");
  EXPECT_TRUE(Rep.Succeeded);
  EXPECT_EQ(Rep.Restarts, 1);
  EXPECT_GT(Rep.CorruptCheckpointsDiscarded, 0);
  EXPECT_EQ(Rep.CheckpointsRestored, 1);
  bool SawStorageFault = false;
  for (const FaultEvent &F : Rep.Faults)
    if (F.Layer == "checkpoint-store")
      SawStorageFault = true;
  EXPECT_TRUE(SawStorageFault);
}

TEST(Session, CheckpointCodecRejectsCorruptionAndTruncation) {
  // Build a real checkpoint from plain ciphertexts.
  PlainBackend Backend(8);
  std::vector<double> Slots(Backend.slotCount(), 1.5);
  auto Ct = Backend.encrypt(Backend.encode(Slots, 1024.0));
  ByteBuffer CtBytes = serialize(Ct);

  Checkpoint Ck;
  Ck.Key = 0xabc123;
  Ck.NodeId = 7;
  CheckpointValue V;
  V.NodeId = 3;
  V.L = makeDenseVectorLayout(4, Backend.slotCount());
  V.Sums.push_back(fnv1aBytes(CtBytes.data(), CtBytes.size()));
  V.Cts.push_back(CtBytes);
  Ck.Values.push_back(V);

  ByteBuffer Blob = encodeCheckpoint(Ck);
  Checkpoint Back = decodeCheckpointOrThrow(Blob);
  EXPECT_EQ(Back.Key, Ck.Key);
  EXPECT_EQ(Back.NodeId, Ck.NodeId);
  ASSERT_EQ(Back.Values.size(), 1u);
  EXPECT_EQ(Back.Values[0].NodeId, 3);
  EXPECT_EQ(Back.Values[0].L, V.L);
  EXPECT_EQ(Back.Values[0].Cts[0], CtBytes);

  // Any flipped bit must be caught (DataCorruption from a checksum, or
  // MalformedCiphertext if the damage lands in structure after the
  // trailing checksum itself was hit).
  for (size_t Bit = 0; Bit < Blob.size() * 8; Bit += 101) {
    ByteBuffer Bad = Blob;
    Bad[Bit / 8] ^= static_cast<uint8_t>(1u << (Bit % 8));
    try {
      (void)decodeCheckpointOrThrow(Bad);
      FAIL() << "bit " << Bit << " flipped without detection";
    } catch (const ChetError &E) {
      EXPECT_TRUE(E.code() == ErrorCode::DataCorruption ||
                  E.code() == ErrorCode::MalformedCiphertext)
          << E.what();
    }
  }

  // Every truncation length must be rejected, never crash.
  for (size_t Len = 0; Len < Blob.size(); Len += 7) {
    ByteBuffer Short(Blob.begin(), Blob.begin() + Len);
    EXPECT_THROW((void)decodeCheckpointOrThrow(Short), ChetError)
        << "truncated to " << Len << " bytes";
  }
}

TEST(Session, FileStoreSurvivesCrashRecovery) {
  PoolGuard Guard;
  TensorCircuit Circ = makeLeNet5Small(/*Reduction=*/2);
  ScaleConfig S;
  Tensor3 Image = randomImageFor(Circ, 49);
  std::string Dir =
      (std::filesystem::temp_directory_path() /
       ("chet_session_store_" + std::to_string(::getpid())))
          .string();
  FileCheckpointStore Store(Dir);
  Store.clear();

  using PlainChaos = FaultInjectionBackend<PlainBackend>;
  auto Run = [&](const FaultPlan &Plan, SessionReport *RepOut) {
    PlainBackend Backend(12);
    PlainChaos Chaos(Backend, Plan);
    TensorLayout L =
        circuitInputLayout(Circ, LayoutPolicy::AllHW, Chaos.slotCount());
    auto Enc = retag<PlainChaos>(encryptTensor(Backend, Image, L, S));
    SessionConfig Cfg;
    Cfg.Checkpoint = CheckpointPolicy::everyN(2);
    Cfg.Store = &Store;
    InferenceSession<PlainChaos> Sess(Chaos, Circ, Cfg);
    auto Out = Sess.run(Enc, S, LayoutPolicy::AllHW);
    if (RepOut)
      *RepOut = Sess.report();
    return serializeAll(Out.Cts);
  };

  std::vector<ByteBuffer> Ref = Run(FaultPlan{}, nullptr);
  EXPECT_GT(Store.bytesStored(), 0u);

  long TotalOps;
  {
    PlainBackend Backend(12);
    PlainChaos Chaos(Backend, FaultPlan{});
    TensorLayout L =
        circuitInputLayout(Circ, LayoutPolicy::AllHW, Chaos.slotCount());
    auto Enc = retag<PlainChaos>(encryptTensor(Backend, Image, L, S));
    InferenceSession<PlainChaos> Sess(Chaos, Circ, SessionConfig{});
    (void)Sess.run(Enc, S, LayoutPolicy::AllHW);
    TotalOps = Chaos.stats().OpsSeen;
  }

  FaultPlan CrashPlan;
  CrashPlan.CrashAtOps = {(TotalOps * 3) / 4};
  SessionReport Rep;
  std::vector<ByteBuffer> Got = Run(CrashPlan, &Rep);
  expectSameBytes(Ref, Got, "file-store crash recovery");
  EXPECT_EQ(Rep.Restarts, 1);
  EXPECT_EQ(Rep.CheckpointsRestored, 1);
  EXPECT_GT(Rep.NodesExecuted, Rep.NodesReplayed);

  Store.clear();
  EXPECT_EQ(Store.bytesStored(), 0u);
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Provenance, classification, and configuration validation
//===----------------------------------------------------------------------===//

TEST(Session, TransientFaultsCarryLayerProvenance) {
  PoolGuard Guard;
  TensorCircuit Circ = smallCircuit();
  ScaleConfig S;
  FaultPlan Plan;
  Plan.Seed = 91;
  Plan.TransientRate = 1.0;
  Plan.MaxTransientFaults = 1;
  PlainBackend Backend(12);
  FaultInjectionBackend<PlainBackend> Chaos(Backend, Plan);
  TensorLayout L =
      circuitInputLayout(Circ, LayoutPolicy::AllHW, Chaos.slotCount());
  auto Enc = retag<FaultInjectionBackend<PlainBackend>>(
      encryptTensor(Backend, randomImageFor(Circ, 51), L, S));

  InferenceSession<FaultInjectionBackend<PlainBackend>> Sess(Chaos, Circ,
                                                             SessionConfig{});
  (void)Sess.run(Enc, S, LayoutPolicy::AllHW);
  const SessionReport &Rep = Sess.report();
  EXPECT_EQ(Rep.NodeRetries, 1);
  ASSERT_EQ(Rep.Faults.size(), 1u);
  EXPECT_EQ(Rep.Faults[0].Class, FaultClass::Transient);
  EXPECT_EQ(Rep.Faults[0].Code, ErrorCode::TransientBackendFault);
  EXPECT_GE(Rep.Faults[0].NodeId, 0);
  EXPECT_EQ(Rep.Faults[0].Layer, Circ.label(Rep.Faults[0].NodeId));
  EXPECT_NE(Rep.Faults[0].Message.find("node"), std::string::npos);

  ASSERT_EQ(Chaos.stats().Sites.size(), 1u);
  const FaultSite &Site = Chaos.stats().Sites[0];
  EXPECT_EQ(Site.Kind, FaultKind::TransientOpFailure);
  EXPECT_EQ(Site.NodeId, Rep.Faults[0].NodeId);
  EXPECT_EQ(Site.Label, Rep.Faults[0].Layer);
  EXPECT_GE(Site.OpOrdinal, 0);
  EXPECT_NE(Sess.report().str().find(Site.Label), std::string::npos);
}

TEST(Session, FaultClassificationTaxonomy) {
  EXPECT_EQ(classifyFault(ErrorCode::TransientBackendFault),
            FaultClass::Transient);
  EXPECT_EQ(classifyFault(ErrorCode::SimulatedCrash), FaultClass::Transient);
  EXPECT_EQ(classifyFault(ErrorCode::DataCorruption), FaultClass::Corruption);
  EXPECT_EQ(classifyFault(ErrorCode::MalformedCiphertext),
            FaultClass::Corruption);
  EXPECT_EQ(classifyFault(ErrorCode::DeadlineExceeded), FaultClass::Deadline);
  EXPECT_EQ(classifyFault(ErrorCode::ScaleMismatch), FaultClass::Permanent);
  EXPECT_EQ(classifyFault(ErrorCode::InvalidArgument), FaultClass::Permanent);
  EXPECT_STREQ(faultClassName(FaultClass::Corruption), "Corruption");
  // SimulatedCrash is recoverable work-wise but not retryable in place.
  SimulatedCrashError Crash("boom");
  EXPECT_FALSE(Crash.isTransient());
  EXPECT_EQ(Crash.faultClass(), FaultClass::Transient);
}

TEST(Session, ConfigurationIsValidatedUpFront) {
  TensorCircuit Circ = smallCircuit();
  PlainBackend Backend(10);
  SessionConfig NoStore;
  NoStore.Checkpoint = CheckpointPolicy::everyNode();
  EXPECT_THROW((InferenceSession<PlainBackend>(Backend, Circ, NoStore)),
               InvalidArgumentError);

  // PlainBackend has no verifyCt: an integrity interval is a misuse.
  SessionConfig NoVerify;
  NoVerify.IntegrityCheckEveryNodes = 4;
  EXPECT_THROW((InferenceSession<PlainBackend>(Backend, Circ, NoVerify)),
               InvalidArgumentError);

  SessionConfig BadRetry;
  BadRetry.Retry.MaxAttempts = 0;
  EXPECT_THROW((InferenceSession<PlainBackend>(Backend, Circ, BadRetry)),
               InvalidArgumentError);
}

} // namespace
