//===- test_layout.cpp - Unit tests for tensor layouts ---------------------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Layout.h"

#include "runtime/ReferenceOps.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace chet;

namespace {

Tensor3 randomTensor(int C, int H, int W, uint64_t Seed) {
  Tensor3 T(C, H, W);
  Prng Rng(Seed);
  for (double &V : T.Data)
    V = Rng.nextDouble(-5, 5);
  return T;
}

TEST(Layout, HwInputLayoutGeometry) {
  TensorLayout L = makeInputLayout(LayoutKind::HW, 3, 8, 8, 2, 1024);
  EXPECT_EQ(L.ctCount(), 3);
  EXPECT_EQ(L.PhysH, 12);
  EXPECT_EQ(L.PhysW, 12);
  EXPECT_EQ(L.slotOf(0, 0, 0), 2 * 12 + 2);
  EXPECT_EQ(L.slotOf(2, 1, 3), 3 * 12 + 5); // channel does not move slots
  EXPECT_EQ(L.ctOf(2), 2);
  EXPECT_TRUE(L.isOnGrid(-2, -2));
  EXPECT_FALSE(L.isOnGrid(-3, 0));
  EXPECT_TRUE(L.isOnGrid(9, 9)); // margin row beyond H
  EXPECT_FALSE(L.isOnGrid(10, 0));
}

TEST(Layout, ChwInputLayoutBlocksArePow2AndTile) {
  TensorLayout L = makeInputLayout(LayoutKind::CHW, 6, 8, 8, 2, 1024);
  EXPECT_EQ(L.ChStride, 256); // pow2ceil(144)
  EXPECT_EQ(L.ChPerCt, 4);
  EXPECT_EQ(static_cast<size_t>(L.ChPerCt) * L.ChStride, L.Slots);
  EXPECT_EQ(L.ctCount(), 2);
  EXPECT_EQ(L.ctOf(5), 1);
  EXPECT_EQ(L.slotOf(5, 0, 0), 1 * 256 + 2 * 12 + 2);
}

TEST(Layout, RotationForMatchesSlotDifference) {
  TensorLayout L = makeInputLayout(LayoutKind::HW, 1, 8, 8, 2, 1024);
  for (int Dy : {-2, 0, 1}) {
    for (int Dx : {-1, 0, 2}) {
      long From = L.slotOf(0, 3 + Dy, 4 + Dx);
      long To = L.slotOf(0, 3, 4);
      EXPECT_EQ(L.rotationFor(Dy, Dx), From - To);
    }
  }
}

TEST(Layout, StridedLayoutKeepsPhysicalGrid) {
  TensorLayout L = makeInputLayout(LayoutKind::HW, 1, 8, 8, 2, 1024);
  TensorLayout L2 = L;
  L2.SY *= 2;
  L2.SX *= 2;
  L2.H = 4;
  L2.W = 4;
  // Logical (y, x) of the strided tensor sits where (2y, 2x) was.
  EXPECT_EQ(L2.slotOf(0, 1, 1), L.slotOf(0, 2, 2));
  EXPECT_EQ(L2.rotationFor(1, 0), 2 * L.rotationFor(1, 0));
}

TEST(Layout, PackUnpackRoundTripHw) {
  TensorLayout L = makeInputLayout(LayoutKind::HW, 3, 7, 5, 2, 512);
  Tensor3 T = randomTensor(3, 7, 5, 1);
  auto Slots = packTensor(T, L);
  EXPECT_EQ(Slots.size(), 3u);
  Tensor3 Back = unpackTensor(Slots, L);
  EXPECT_EQ(maxAbsDiff(T, Back), 0.0);
}

TEST(Layout, PackUnpackRoundTripChw) {
  TensorLayout L = makeInputLayout(LayoutKind::CHW, 5, 7, 5, 2, 512);
  Tensor3 T = randomTensor(5, 7, 5, 2);
  auto Slots = packTensor(T, L);
  Tensor3 Back = unpackTensor(Slots, L);
  EXPECT_EQ(maxAbsDiff(T, Back), 0.0);
}

TEST(Layout, PackLeavesMarginsZero) {
  TensorLayout L = makeInputLayout(LayoutKind::HW, 1, 4, 4, 2, 256);
  Tensor3 T = randomTensor(1, 4, 4, 3);
  auto Slots = packTensor(T, L);
  double Total = 0, Valid = 0;
  for (double V : Slots[0])
    Total += std::abs(V);
  for (int Y = 0; Y < 4; ++Y)
    for (int X = 0; X < 4; ++X)
      Valid += std::abs(Slots[0][L.slotOf(0, Y, X)]);
  EXPECT_DOUBLE_EQ(Total, Valid);
}

TEST(Layout, ValidMaskMarksExactlyValidSlots) {
  TensorLayout L = makeInputLayout(LayoutKind::CHW, 3, 4, 4, 1, 256);
  for (int Ct = 0; Ct < L.ctCount(); ++Ct) {
    auto Mask = buildValidMask(L, Ct);
    std::set<long> Expected;
    for (int C = Ct * L.ChPerCt; C < (Ct + 1) * L.ChPerCt && C < L.C; ++C)
      for (int Y = 0; Y < L.H; ++Y)
        for (int X = 0; X < L.W; ++X)
          Expected.insert(L.slotOf(C, Y, X));
    for (size_t I = 0; I < Mask.size(); ++I)
      EXPECT_EQ(Mask[I], Expected.count(static_cast<long>(I)) ? 1.0 : 0.0);
  }
}

TEST(Layout, BiasVectorPlacesPerChannelValues) {
  TensorLayout L = makeInputLayout(LayoutKind::CHW, 3, 2, 2, 0, 64);
  auto Bias = buildBiasVector(L, 0, {1.0, 2.0, 3.0});
  for (int C = 0; C < 3; ++C)
    for (int Y = 0; Y < 2; ++Y)
      for (int X = 0; X < 2; ++X)
        EXPECT_EQ(Bias[L.slotOf(C, Y, X)], C + 1.0);
}

TEST(Layout, DenseVectorLayout) {
  TensorLayout L = makeDenseVectorLayout(10, 256);
  EXPECT_EQ(L.ctCount(), 1);
  for (int C = 0; C < 10; ++C)
    EXPECT_EQ(L.slotOf(C, 0, 0), C);
}

TEST(Layout, FcRowPlacesWeightsAtFeaturePositions) {
  TensorLayout L = makeInputLayout(LayoutKind::HW, 2, 3, 3, 1, 64);
  FcWeights Wt(4, 2 * 3 * 3);
  for (int O = 0; O < 4; ++O)
    for (int F = 0; F < Wt.In; ++F)
      Wt.at(O, F) = O * 100 + F;
  for (int Ct = 0; Ct < 2; ++Ct) {
    auto Row = buildFcRow(L, Wt, 2, Ct);
    for (int F = 0; F < Wt.In; ++F) {
      int C = F / 9, Rem = F % 9;
      if (C != Ct)
        continue;
      EXPECT_EQ(Row[L.slotOf(C, Rem / 3, Rem % 3)], 200.0 + F);
    }
  }
}

TEST(Layout, ChwConvPlainRespectsDiagonalsAndBounds) {
  TensorLayout In = makeInputLayout(LayoutKind::CHW, 4, 4, 4, 1, 256);
  ASSERT_EQ(In.ChPerCt, 4);
  TensorLayout Out = In;
  Out.C = 4;
  ConvWeights Wt(4, 4, 3, 3);
  for (size_t I = 0; I < Wt.W.size(); ++I)
    Wt.W[I] = static_cast<double>(I + 1);
  // Diagonal d: block c multiplies weight w[c][(c+d) mod 4].
  auto Plain = buildChwConvPlain(In, Out, Wt, 0, 0, 1, 1, 1, /*Pad=*/1);
  ASSERT_FALSE(Plain.empty());
  for (int C = 0; C < 4; ++C) {
    int Ci = (C + 1) % 4;
    EXPECT_EQ(Plain[Out.slotOf(C, 1, 1)], Wt.at(C, Ci, 1, 1));
  }
  // Tap reading off-grid positions zeroes the edge: with pad 1 and tap
  // (0,0), output (0,0) reads input (-1,-1), which is on the margin
  // (on-grid), so it stays; but a huge tap offset would not. Check the
  // zero-weight skip instead.
  ConvWeights Zero(4, 4, 3, 3);
  EXPECT_TRUE(buildChwConvPlain(In, Out, Zero, 0, 0, 0, 0, 0, 1).empty());
}

} // namespace
