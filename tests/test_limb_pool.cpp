//===- test_limb_pool.cpp - Pooled limb arena allocator tests --------------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The limb pool's contract (DESIGN.md section 5g): pooling is invisible
/// to computed values. Covers the allocator unit semantics (bucket reuse,
/// disabled-mode std::vector emulation, live-buffer mode toggling), a
/// randomized multi-thread acquire/release stress intended for the TSan
/// job, byte-identity of pooled vs CHET_LIMB_POOL=off pipelines on both
/// schemes at 1/2/8 threads, and the steady-state guarantee that a warm
/// LeNet inference performs zero pool-miss allocations.
///
//===----------------------------------------------------------------------===//

#include "support/LimbPool.h"

#include "ckks/BigCkks.h"
#include "ckks/RnsCkks.h"
#include "ckks/Serialization.h"
#include "core/Compiler.h"
#include "core/Evaluate.h"
#include "hisa/ProfilingBackend.h"
#include "nn/Networks.h"
#include "runtime/ReferenceOps.h"
#include "support/Prng.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <vector>

using namespace chet;

namespace {

/// Restores the pool's enabled flag and the global thread count on scope
/// exit so a failing test cannot leak either into later tests.
struct PoolModeGuard {
  bool WasEnabled = LimbPool::instance().enabled();
  ~PoolModeGuard() {
    LimbPool::instance().setEnabled(WasEnabled);
    setGlobalThreadCount(0);
  }
};

//===----------------------------------------------------------------------===//
// Allocator unit semantics
//===----------------------------------------------------------------------===//

TEST(LimbPoolUnit, BucketReuseCountsHit) {
  PoolModeGuard Guard;
  LimbPool &Pool = LimbPool::instance();
  Pool.setEnabled(true);
  Pool.trim();
  Pool.resetStats();

  const size_t Words = 1000; // rounds up to the 1024-word bucket
  const uint64_t *First = nullptr;
  {
    LimbBuffer B(Words);
    First = B.data();
    ASSERT_NE(First, nullptr);
    EXPECT_EQ(B.size(), Words);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(First) % LimbPool::Alignment, 0u);
  }
  // The thread cache is LIFO: the same arena comes back immediately.
  {
    LimbBuffer B(Words);
    EXPECT_EQ(B.data(), First);
  }
  LimbPool::Stats S = Pool.stats();
  EXPECT_EQ(S.Acquires, 2u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Releases, 2u);
  EXPECT_EQ(S.BytesRequested, 2 * Words * sizeof(uint64_t));
  EXPECT_GT(S.BytesZeroFillAvoided, 0u);
  EXPECT_EQ(S.OutstandingBytes, 0u);
  EXPECT_GT(S.HighWaterBytes, 0u);
}

TEST(LimbPoolUnit, CapacityReuseAvoidsReacquire) {
  PoolModeGuard Guard;
  LimbPool &Pool = LimbPool::instance();
  Pool.setEnabled(true);
  Pool.resetStats();

  LimbBuffer B(512);
  const uint64_t *P = B.data();
  uint64_t AcquiresAfterFirst = Pool.stats().Acquires;
  // Shrinking or regrowing within the bucket capacity must not go back
  // to the pool.
  B.resizeUninit(100);
  EXPECT_EQ(B.data(), P);
  EXPECT_EQ(B.size(), 100u);
  B.assignZero(512);
  EXPECT_EQ(B.data(), P);
  for (size_t I = 0; I < 512; ++I)
    ASSERT_EQ(B[I], 0u);
  EXPECT_EQ(Pool.stats().Acquires, AcquiresAfterFirst);
}

TEST(LimbPoolUnit, DisabledModeZeroFillsAndSkipsStats) {
  PoolModeGuard Guard;
  LimbPool &Pool = LimbPool::instance();
  Pool.setEnabled(false);
  Pool.resetStats();

  {
    // Fresh disabled-mode storage reproduces std::vector semantics:
    // zero-filled even though nobody asked.
    LimbBuffer B(4096);
    for (size_t I = 0; I < 4096; ++I)
      ASSERT_EQ(B[I], 0u);
    // assignZero on top is still all-zero (fresh allocation again).
    B.assignZero(4096);
    for (size_t I = 0; I < 4096; ++I)
      ASSERT_EQ(B[I], 0u);
  }
  // Unpooled traffic leaves the pooled counters untouched, so disabled
  // benchmark runs report zero misses/bytes by construction.
  LimbPool::Stats S = Pool.stats();
  EXPECT_EQ(S.Acquires, 0u);
  EXPECT_EQ(S.Misses, 0u);
  EXPECT_EQ(S.BytesRequested, 0u);
}

TEST(LimbPoolUnit, TogglingWithLiveBuffersIsSafe) {
  PoolModeGuard Guard;
  LimbPool &Pool = LimbPool::instance();
  Pool.setEnabled(true);

  LimbBuffer Pooled(256);
  Pool.setEnabled(false);
  LimbBuffer Unpooled(256);
  Pool.setEnabled(true);
  // Each buffer remembers which mode produced it; both releases must
  // route correctly (pooled -> free list, unpooled -> heap).
  uint64_t ReleasesBefore = Pool.stats().Releases;
  Pooled.reset();
  Unpooled.reset();
  EXPECT_EQ(Pool.stats().Releases, ReleasesBefore + 1);
}

TEST(LimbPoolUnit, PooledScratchZeroedIsValueInitialized) {
  PoolModeGuard Guard;
  LimbPool::instance().setEnabled(true);
  // The key-switch lazy accumulators use exactly this instantiation.
  auto Acc = PooledScratch<unsigned __int128>::zeroed(1024);
  ASSERT_EQ(Acc.size(), 1024u);
  for (size_t I = 0; I < Acc.size(); ++I)
    ASSERT_TRUE(Acc[I] == 0);
  Acc[3] = (static_cast<unsigned __int128>(1) << 100) + 7;
  EXPECT_TRUE(Acc[3] >> 100 == 1);
}

//===----------------------------------------------------------------------===//
// Randomized cross-thread stress (primary TSan target)
//===----------------------------------------------------------------------===//

TEST(LimbPoolStress, RandomizedAcquireReleaseAcrossThreads) {
  PoolModeGuard Guard;
  LimbPool &Pool = LimbPool::instance();
  Pool.setEnabled(true);

  constexpr int NumThreads = 8;
  constexpr int ItersPerThread = 1500;
  // Buffers parked here are released by whichever thread pops them,
  // exercising cross-thread release and the shared free lists.
  std::mutex SharedMu;
  std::vector<std::pair<LimbBuffer, uint64_t>> Shared;

  auto Worker = [&](unsigned ThreadId) {
    Prng Rng(0x9e3779b9u * (ThreadId + 1));
    std::vector<std::pair<LimbBuffer, uint64_t>> Local;
    for (int It = 0; It < ItersPerThread; ++It) {
      size_t Words = 64 + size_t(Rng.next() % 16384);
      uint64_t Tag = Rng.next();
      LimbBuffer B(Words);
      // Stamp a recognizable pattern; stale pool bytes must never leak
      // into the stamped positions.
      B[0] = Tag;
      B[Words / 2] = Tag ^ 0xabcdef;
      B[Words - 1] = ~Tag;
      switch (Rng.next() % 4) {
      case 0: // hold locally for a while
        Local.emplace_back(std::move(B), Tag);
        break;
      case 1: { // park for another thread to verify and free
        std::lock_guard<std::mutex> Lk(SharedMu);
        Shared.emplace_back(std::move(B), Tag);
        break;
      }
      default: // verify and release immediately
        ASSERT_EQ(B[0], Tag);
        ASSERT_EQ(B[Words - 1], ~Tag);
        break;
      }
      if (Local.size() > 16)
        Local.erase(Local.begin(), Local.begin() + 8);
      if (It % 7 == 0) {
        std::lock_guard<std::mutex> Lk(SharedMu);
        if (!Shared.empty()) {
          auto Entry = std::move(Shared.back());
          Shared.pop_back();
          ASSERT_EQ(Entry.first[0], Entry.second);
        }
      }
      if (It % 501 == 0)
        Pool.trim(); // concurrent trims must not corrupt the lists
    }
    for (auto &Entry : Local)
      ASSERT_EQ(Entry.first[0], Entry.second);
  };

  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back(Worker, unsigned(T));
  for (std::thread &T : Threads)
    T.join();
  Shared.clear();

  LimbPool::Stats S = Pool.stats();
  EXPECT_EQ(S.OutstandingBytes, 0u);
  EXPECT_GT(S.Acquires, uint64_t(NumThreads) * ItersPerThread / 2);
}

//===----------------------------------------------------------------------===//
// Byte identity: pooled vs CHET_LIMB_POOL=off
//===----------------------------------------------------------------------===//

/// Serialized bytes of every output ciphertext of a small encrypted
/// pipeline (conv -> activation -> pool -> FC) with the limb pool forced
/// to \p PoolOn under \p Threads lanes.
template <typename MakeFn>
std::vector<ByteBuffer> pipelineBytes(MakeFn &&MakeBackend, bool PoolOn,
                                      unsigned Threads) {
  LimbPool::instance().setEnabled(PoolOn);
  setGlobalThreadCount(Threads);
  auto Backend = MakeBackend();
  ScaleConfig S = ScaleConfig::fromExponents(30, 30, 30, 16);
  Tensor3 In(1, 8, 8);
  Prng Rng(41);
  for (double &V : In.Data)
    V = Rng.nextDouble(-1, 1);
  ConvWeights Conv(2, 1, 3, 3);
  for (double &V : Conv.W)
    V = Rng.nextDouble(-0.5, 0.5);
  for (double &V : Conv.Bias)
    V = Rng.nextDouble(-0.2, 0.2);
  FcWeights Fc(4, 2 * 4 * 4);
  for (double &V : Fc.W)
    V = Rng.nextDouble(-0.3, 0.3);
  for (double &V : Fc.Bias)
    V = Rng.nextDouble(-0.2, 0.2);

  TensorLayout L = makeInputLayout(LayoutKind::CHW, 1, 8, 8, /*PadPhys=*/1,
                                   Backend.slotCount());
  auto Enc = encryptTensor(Backend, In, L, S);
  auto C1 = conv2d(Backend, Enc, Conv, 1, 1, S);
  auto A1 = polyActivation(Backend, C1, 0.25, 0.5, S);
  auto P1 = averagePool(Backend, A1, 2, 2, S);
  auto F1 = fullyConnected(Backend, P1, Fc, S);

  std::vector<ByteBuffer> Bytes;
  for (const auto &Ct : F1.Cts)
    Bytes.push_back(serialize(Ct));
  return Bytes;
}

template <typename MakeFn> void expectPooledIdentity(MakeFn &&Make) {
  // Unpooled single-thread run is the reference semantics (std::vector
  // zero-filled allocations, eager key-switch fold).
  std::vector<ByteBuffer> Ref = pipelineBytes(Make, /*PoolOn=*/false, 1);
  for (unsigned Threads : {1u, 2u, 8u}) {
    for (bool PoolOn : {false, true}) {
      std::vector<ByteBuffer> Got = pipelineBytes(Make, PoolOn, Threads);
      ASSERT_EQ(Ref.size(), Got.size());
      for (size_t I = 0; I < Ref.size(); ++I)
        EXPECT_EQ(Ref[I], Got[I])
            << "ciphertext " << I << " diverged (pool "
            << (PoolOn ? "on" : "off") << ", " << Threads << " threads)";
    }
  }
}

TEST(LimbPoolByteIdentity, RnsCkksPooledMatchesUnpooled) {
  PoolModeGuard Guard;
  expectPooledIdentity([] {
    RnsCkksParams P = RnsCkksParams::create(/*LogN=*/12, /*Levels=*/10,
                                            /*FirstBits=*/60,
                                            /*ScaleBits=*/30);
    P.Security = SecurityLevel::None;
    P.Seed = 91;
    return RnsCkksBackend(P);
  });
}

TEST(LimbPoolByteIdentity, BigCkksPooledMatchesUnpooled) {
  PoolModeGuard Guard;
  expectPooledIdentity([] {
    BigCkksParams P;
    P.LogN = 12;
    P.LogQ = 240;
    P.Seed = 92;
    P.Security = SecurityLevel::None;
    return BigCkksBackend(P);
  });
}

//===----------------------------------------------------------------------===//
// Steady state: a warm inference never misses the pool
//===----------------------------------------------------------------------===//

TEST(LimbPoolSteadyState, WarmLeNetInferenceHasZeroPoolMisses) {
  PoolModeGuard Guard;
  LimbPool &Pool = LimbPool::instance();
  Pool.setEnabled(true);
  setGlobalThreadCount(2);

  TensorCircuit Circ = makeLeNet5Small(/*Reduction=*/4);
  CompilerOptions O;
  O.Scheme = SchemeKind::RnsCkks;
  O.Scales = ScaleConfig::fromExponents(30, 30, 30, 16);
  CompiledCircuit C = compileCircuit(Circ, O);
  RnsCkksBackend Inner = makeRnsBackend(C);
  ProfilingBackend<RnsCkksBackend> Prof(Inner);
  Tensor3 Image = randomImageFor(Circ, 123);

  // Warm-up inference: populates every bucket the network ever needs.
  runEncryptedInference(Prof, Circ, Image, C.Scales, C.Policy);

  Prof.reset();
  Pool.resetStats();
  Tensor3 Got = runEncryptedInference(Prof, Circ, Image, C.Scales, C.Policy);
  Tensor3 Want = Circ.evaluatePlain(Image);
  EXPECT_LT(maxAbsDiff(Got, Want), 0.5);

  LimbPool::Stats S = Pool.stats();
  EXPECT_GT(S.Acquires, 0u) << "inference did not exercise the pool";
  EXPECT_EQ(S.Misses, 0u)
      << "steady-state inference allocated instead of reusing arenas";
  EXPECT_EQ(S.Hits, S.Acquires);
  // Per-op miss attribution agrees with the global counter. (Byte
  // attribution is approximate -- an op that calls other profiled ops
  // counts their allocations too -- so only its presence is asserted.)
  EXPECT_EQ(Prof.poolMisses(), 0u);
  uint64_t ReportedBytes = 0;
  for (const auto &St : Prof.stats())
    ReportedBytes += St.AllocBytes;
  EXPECT_GT(ReportedBytes, 0u);
  std::string Report = Prof.report();
  EXPECT_NE(Report.find("limb pool"), std::string::npos);
}

} // namespace
