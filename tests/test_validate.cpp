//===- test_validate.cpp - Compile-time circuit validation tests -----------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the validation pass of Validate.h: feasible circuits come back
/// clean, infeasible ones produce one diagnostic per failing layout
/// policy (all reported at once, not fail-fast), and compileCircuit
/// surfaces the full report in its InfeasibleCircuit error.
///
//===----------------------------------------------------------------------===//

#include "core/Validate.h"

#include "nn/Networks.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <string>

using namespace chet;

namespace {

TensorCircuit tinyCircuit(uint64_t Seed = 50) {
  Prng Rng(Seed);
  TensorCircuit Circ("tiny");
  ConvWeights Conv(2, 1, 3, 3);
  for (double &V : Conv.W)
    V = Rng.nextDouble(-0.5, 0.5);
  FcWeights Fc(4, 2 * 4 * 4);
  for (double &V : Fc.W)
    V = Rng.nextDouble(-0.3, 0.3);
  int X = Circ.input(1, 8, 8);
  X = Circ.conv2d(X, Conv, 1, 1);
  X = Circ.polyActivation(X, 0.25, 0.5);
  X = Circ.averagePool(X, 2, 2);
  X = Circ.fullyConnected(X, Fc);
  Circ.output(X);
  return Circ;
}

/// A circuit too deep for any ring dimension the security table covers:
/// every activation costs a squaring level, and dozens of them push the
/// modulus far past the 128-bit budget at LogN = 16.
TensorCircuit abyssCircuit(int Depth) {
  TensorCircuit Circ("abyss");
  int X = Circ.input(1, 8, 8);
  for (int I = 0; I < Depth; ++I)
    X = Circ.polyActivation(X, 0.25, 0.5);
  Circ.output(X);
  return Circ;
}

CompilerOptions baseOptions(SchemeKind Scheme) {
  CompilerOptions O;
  O.Scheme = Scheme;
  O.Security = SecurityLevel::Classical128;
  O.Scales = ScaleConfig::fromExponents(30, 30, 30, 16);
  return O;
}

TEST(Validate, FeasibleCircuitComesBackClean) {
  for (SchemeKind Scheme : {SchemeKind::RnsCkks, SchemeKind::BigCkks}) {
    ValidationReport R = validateCircuit(tinyCircuit(), baseOptions(Scheme));
    EXPECT_TRUE(R.ok());
    EXPECT_EQ(R.PoliciesChecked, 4);
    EXPECT_EQ(R.FeasiblePolicies, 4);
    EXPECT_TRUE(R.Diagnostics.empty());
  }
}

TEST(Validate, InfeasibleCircuitReportsEveryPolicy) {
  ValidationReport R =
      validateCircuit(abyssCircuit(60), baseOptions(SchemeKind::RnsCkks));
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.PoliciesChecked, 4);
  EXPECT_EQ(R.FeasiblePolicies, 0);
  // Every policy contributes its own diagnostic -- the pass reports all
  // infeasibilities at once instead of stopping at the first.
  ASSERT_EQ(R.Diagnostics.size(), 4u);
  for (const CircuitDiagnostic &D : R.Diagnostics)
    EXPECT_TRUE(D.Code == ErrorCode::SecurityBudgetExceeded ||
                D.Code == ErrorCode::LevelExhausted)
        << errorCodeName(D.Code) << ": " << D.Message;
  std::string Text = R.str();
  EXPECT_NE(Text.find("4 violations"), std::string::npos) << Text;
  EXPECT_NE(Text.find("(0 feasible)"), std::string::npos) << Text;
}

TEST(Validate, CkksSchemeAlsoDiagnosesDepth) {
  ValidationReport R =
      validateCircuit(abyssCircuit(60), baseOptions(SchemeKind::BigCkks));
  EXPECT_FALSE(R.ok());
  ASSERT_FALSE(R.Diagnostics.empty());
  EXPECT_EQ(R.Diagnostics.front().Code, ErrorCode::SecurityBudgetExceeded);
  EXPECT_NE(R.Diagnostics.front().Message.find("security table"),
            std::string::npos);
}

TEST(Validate, EmptyCircuitIsInvalid) {
  TensorCircuit Circ("empty");
  ValidationReport R =
      validateCircuit(Circ, baseOptions(SchemeKind::RnsCkks));
  EXPECT_FALSE(R.ok());
  ASSERT_EQ(R.Diagnostics.size(), 1u);
  EXPECT_EQ(R.Diagnostics.front().Code, ErrorCode::InvalidArgument);
}

TEST(Validate, CompileCircuitThrowsWithFullReport) {
  try {
    compileCircuit(abyssCircuit(60), baseOptions(SchemeKind::RnsCkks));
    FAIL() << "expected InfeasibleCircuitError";
  } catch (const ChetError &E) {
    EXPECT_EQ(E.code(), ErrorCode::InfeasibleCircuit);
    std::string Msg = E.what();
    // The error carries the per-policy breakdown from the validator.
    EXPECT_NE(Msg.find("circuit validation found"), std::string::npos) << Msg;
    for (LayoutPolicy P : kAllLayoutPolicies)
      EXPECT_NE(Msg.find(layoutPolicyName(P)), std::string::npos) << Msg;
  }
}

TEST(Validate, ReportDedupesIdenticalDiagnosticsAcrossPolicies) {
  ValidationReport R;
  R.PoliciesChecked = 4;
  R.FeasiblePolicies = 0;
  for (LayoutPolicy P : kAllLayoutPolicies)
    R.Diagnostics.push_back(
        {ErrorCode::LevelExhausted, P, "", "chain holds only 10 primes"});
  R.Diagnostics.push_back(
      {ErrorCode::SecurityBudgetExceeded, LayoutPolicy::AllHW, "",
       "needs 900 bits"});

  std::string Text = R.str();
  // The header still counts raw diagnostics...
  EXPECT_NE(Text.find("5 violations"), std::string::npos) << Text;
  // ...but the identical message renders once, tagged with every policy.
  EXPECT_EQ(Text.find("chain holds only 10 primes"),
            Text.rfind("chain holds only 10 primes"))
      << Text;
  EXPECT_NE(Text.find("(4 policies)"), std::string::npos) << Text;
  for (LayoutPolicy P : kAllLayoutPolicies)
    EXPECT_NE(Text.find(layoutPolicyName(P)), std::string::npos) << Text;
  // Two distinct messages -> exactly lines 1. and 2., no line 3.
  EXPECT_NE(Text.find("\n  2. "), std::string::npos) << Text;
  EXPECT_EQ(Text.find("\n  3. "), std::string::npos) << Text;
}

TEST(Validate, ReportDedupKeyIncludesProvenance) {
  // Two layers tripping the byte-identical message are two findings; the
  // dedup key must include the provenance, not just (code, message).
  ValidationReport R;
  R.PoliciesChecked = 2;
  R.Diagnostics.push_back({ErrorCode::LevelExhausted, LayoutPolicy::AllHW,
                           "layer 'conv1'", "modulus chain exhausted"});
  R.Diagnostics.push_back({ErrorCode::LevelExhausted, LayoutPolicy::AllHW,
                           "layer 'conv2'", "modulus chain exhausted"});
  R.Diagnostics.push_back({ErrorCode::LevelExhausted, LayoutPolicy::AllCHW,
                           "layer 'conv2'", "modulus chain exhausted"});

  std::string Text = R.str();
  // Distinct provenance -> two numbered findings, each naming its layer.
  EXPECT_NE(Text.find("\n  2. "), std::string::npos) << Text;
  EXPECT_EQ(Text.find("\n  3. "), std::string::npos) << Text;
  EXPECT_NE(Text.find("(at layer 'conv1')"), std::string::npos) << Text;
  EXPECT_NE(Text.find("(at layer 'conv2')"), std::string::npos) << Text;
  // Same provenance still collapses across policies.
  EXPECT_NE(Text.find("(2 policies)"), std::string::npos) << Text;
}

TEST(Validate, MissingRotationStepsHonorsPow2Fallback) {
  const size_t Slots = 16;
  // 3 = 1 + 2 decomposes over the available keys.
  EXPECT_TRUE(missingRotationSteps({3}, {1, 2}, Slots).empty());
  // A dedicated key needs no decomposition.
  EXPECT_TRUE(missingRotationSteps({5}, {5}, Slots).empty());
  // 5 = 1 + 4 with no key for 4.
  auto Missing = missingRotationSteps({5}, {1}, Slots);
  ASSERT_EQ(Missing.size(), 1u);
  EXPECT_EQ(Missing.front(), 5);
  // -1 normalizes to 15; the short direction is one right-hop, i.e. the
  // normalized step 15 itself.
  EXPECT_TRUE(missingRotationSteps({-1}, {15}, Slots).empty());
  // Full-cycle rotations need no key at all.
  EXPECT_TRUE(missingRotationSteps({0, 16, -16}, {}, Slots).empty());
}

} // namespace
