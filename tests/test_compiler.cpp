//===- test_compiler.cpp - Tests for the compiler passes -------------------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"

#include "nn/Networks.h"
#include "runtime/ReferenceOps.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace chet;

namespace {

/// A small two-conv circuit that exercises padding, pooling, activation,
/// and an FC head while staying fast under real encryption.
TensorCircuit tinyCircuit(uint64_t Seed = 50) {
  Prng Rng(Seed);
  TensorCircuit Circ("tiny");
  ConvWeights Conv(2, 1, 3, 3);
  for (double &V : Conv.W)
    V = Rng.nextDouble(-0.5, 0.5);
  FcWeights Fc(4, 2 * 4 * 4);
  for (double &V : Fc.W)
    V = Rng.nextDouble(-0.3, 0.3);
  int X = Circ.input(1, 8, 8);
  X = Circ.conv2d(X, Conv, 1, 1);
  X = Circ.polyActivation(X, 0.25, 0.5);
  X = Circ.averagePool(X, 2, 2);
  X = Circ.fullyConnected(X, Fc);
  Circ.output(X);
  return Circ;
}

CompilerOptions baseOptions(SchemeKind Scheme) {
  CompilerOptions O;
  O.Scheme = Scheme;
  O.Security = SecurityLevel::Classical128;
  O.Scales = ScaleConfig::fromExponents(30, 30, 30, 16);
  return O;
}

TEST(Compiler, AnalyzesAllFourPolicies) {
  CompiledCircuit C = compileCircuit(tinyCircuit(), baseOptions(SchemeKind::RnsCkks));
  EXPECT_EQ(C.PerPolicy.size(), 4u);
  for (const PolicyAnalysis &P : C.PerPolicy) {
    EXPECT_GT(P.EstimatedCost, 0);
    EXPECT_GT(P.LogQ, 60);
    EXPECT_GE(P.LogN, 11);
    EXPECT_FALSE(P.RotationSteps.empty());
  }
}

TEST(Compiler, PicksTheCheapestPolicy) {
  CompiledCircuit C =
      compileCircuit(tinyCircuit(), baseOptions(SchemeKind::RnsCkks));
  for (const PolicyAnalysis &P : C.PerPolicy)
    EXPECT_LE(C.EstimatedCost, P.EstimatedCost);
}

TEST(Compiler, ParametersRespectSecurityTable) {
  for (SchemeKind Scheme : {SchemeKind::RnsCkks, SchemeKind::BigCkks}) {
    CompiledCircuit C = compileCircuit(tinyCircuit(), baseOptions(Scheme));
    double LogQP = Scheme == SchemeKind::RnsCkks
                       ? C.Rns->logQP()
                       : C.Big->logQP();
    EXPECT_LE(LogQP,
              maxLogQForSecurity(C.LogN, SecurityLevel::Classical128));
    // Minimality: one dimension smaller must not fit.
    if (C.LogN > 11) {
      EXPECT_GT(LogQP, maxLogQForSecurity(C.LogN - 1,
                                          SecurityLevel::Classical128));
    }
  }
}

TEST(Compiler, RnsChainConsumesCandidatesInAnalysisOrder) {
  CompiledCircuit C =
      compileCircuit(tinyCircuit(), baseOptions(SchemeKind::RnsCkks));
  ASSERT_TRUE(C.Rns.has_value());
  const auto &Chain = C.Rns->ChainPrimes;
  ASSERT_GE(Chain.size(), 2u);
  // The tail of the chain is the first candidate consumed; candidates
  // descend from just below 2^30, so the tail must be the largest
  // scaling prime.
  for (size_t I = 2; I < Chain.size(); ++I)
    EXPECT_LT(Chain[I - 1], Chain[I]);
}

TEST(Compiler, DeeperCircuitsConsumeMoreModulus) {
  CompilerOptions O = baseOptions(SchemeKind::BigCkks);
  TensorCircuit Shallow = tinyCircuit();
  CompiledCircuit C1 = compileCircuit(Shallow, O);

  // Stack a second activation to deepen the circuit.
  Prng Rng(51);
  TensorCircuit Deep("deep");
  ConvWeights Conv(2, 1, 3, 3);
  for (double &V : Conv.W)
    V = Rng.nextDouble(-0.5, 0.5);
  int X = Deep.input(1, 8, 8);
  X = Deep.conv2d(X, Conv, 1, 1);
  X = Deep.polyActivation(X, 0.25, 0.5);
  X = Deep.polyActivation(X, 0.25, 0.5);
  X = Deep.polyActivation(X, 0.25, 0.5);
  Deep.output(X);
  CompiledCircuit C2 = compileCircuit(Deep, O);
  EXPECT_GT(C2.LogQ, C1.LogQ);
}

TEST(Compiler, SelectedRotationKeysAreSufficientAndExact) {
  CompilerOptions O = baseOptions(SchemeKind::RnsCkks);
  TensorCircuit Circ = tinyCircuit();
  CompiledCircuit C = compileCircuit(Circ, O);
  ASSERT_FALSE(C.RotationKeys.empty());
  EXPECT_FALSE(C.Rns->StockPow2Keys);

  // Build the backend with exactly the selected keys and run for real:
  // every rotation must find its dedicated key (no fallback possible
  // since the power-of-two set was not generated).
  RnsCkksBackend Backend = makeRnsBackend(C);
  EXPECT_EQ(Backend.rotationKeyCount(), C.RotationKeys.size());
  Tensor3 Image = randomImageFor(Circ, 60);
  Tensor3 Got =
      runEncryptedInference(Backend, Circ, Image, O.Scales, C.Policy);
  Tensor3 Want = Circ.evaluatePlain(Image);
  EXPECT_LT(maxAbsDiff(Got, Want), 5e-2);
}

TEST(Compiler, CompiledParametersEvaluateCorrectlyBothSchemes) {
  TensorCircuit Circ = tinyCircuit();
  Tensor3 Image = randomImageFor(Circ, 61);
  Tensor3 Want = Circ.evaluatePlain(Image);

  {
    CompiledCircuit C =
        compileCircuit(Circ, baseOptions(SchemeKind::RnsCkks));
    RnsCkksBackend Backend = makeRnsBackend(C);
    Tensor3 Got = runEncryptedInference(Backend, Circ, Image,
                                        C.Scales, C.Policy);
    EXPECT_LT(maxAbsDiff(Got, Want), 5e-2);
  }
  {
    CompiledCircuit C =
        compileCircuit(Circ, baseOptions(SchemeKind::BigCkks));
    // HEAAN-style parameters for this tiny circuit exceed the 128-bit
    // budget check only via the doubled key modulus; keep the check on.
    BigCkksBackend Backend = makeBigBackend(C);
    Tensor3 Got = runEncryptedInference(Backend, Circ, Image,
                                        C.Scales, C.Policy);
    EXPECT_LT(maxAbsDiff(Got, Want), 5e-2);
  }
}

TEST(Compiler, FixedPolicyIsHonored) {
  CompilerOptions O = baseOptions(SchemeKind::RnsCkks);
  O.SearchLayouts = false;
  O.FixedPolicy = LayoutPolicy::AllCHW;
  CompiledCircuit C = compileCircuit(tinyCircuit(), O);
  EXPECT_EQ(C.Policy, LayoutPolicy::AllCHW);
  EXPECT_EQ(C.PerPolicy.size(), 1u);
}

TEST(Compiler, ManualKeyConfigurationKeepsStockKeys) {
  CompilerOptions O = baseOptions(SchemeKind::RnsCkks);
  O.SelectRotationKeys = false;
  CompiledCircuit C = compileCircuit(tinyCircuit(), O);
  EXPECT_TRUE(C.RotationKeys.empty());
  EXPECT_TRUE(C.Rns->StockPow2Keys);
  // Cost with power-of-two fallback must not be below the selected-keys
  // cost for the same policy.
  CompilerOptions O2 = baseOptions(SchemeKind::RnsCkks);
  CompiledCircuit C2 = compileCircuit(tinyCircuit(), O2);
  for (size_t I = 0; I < C.PerPolicy.size(); ++I)
    EXPECT_GE(C.PerPolicy[I].EstimatedCost,
              C2.PerPolicy[I].EstimatedCost);
}

TEST(Compiler, ScaleSelectionShrinksScales) {
  TensorCircuit Circ = tinyCircuit();
  CompilerOptions O = baseOptions(SchemeKind::RnsCkks);
  O.Scales = ScaleConfig::fromExponents(32, 32, 32, 20);
  std::vector<Tensor3> Inputs = {randomImageFor(Circ, 70),
                                 randomImageFor(Circ, 71)};
  ScaleSearchOptions SO;
  SO.Tolerance = 0.05;
  SO.StepBits = 4;
  SO.MinExponent = 12;
  ScaleSearchResult R = selectScales(Circ, O, Inputs, SO);
  EXPECT_GT(R.Trials, 1);
  // At least one exponent should shrink at this loose tolerance.
  EXPECT_GT(R.AcceptedSteps, 0);
  double Before = O.Scales.Image * O.Scales.Weight * O.Scales.Scalar *
                  O.Scales.Mask;
  double After = R.Scales.Image * R.Scales.Weight * R.Scales.Scalar *
                 R.Scales.Mask;
  EXPECT_LT(After, Before);

  // The selected scales must still satisfy the tolerance end-to-end.
  CompilerOptions Final = O;
  Final.Scales = R.Scales;
  CompiledCircuit C = compileCircuit(Circ, Final);
  RnsCkksBackend Backend = makeRnsBackend(C);
  for (const Tensor3 &Image : Inputs) {
    Tensor3 Got = runEncryptedInference(Backend, Circ, Image, R.Scales,
                                        C.Policy);
    EXPECT_LT(maxAbsDiff(Got, Circ.evaluatePlain(Image)), SO.Tolerance);
  }
}

} // namespace
