//===- test_big_ckks.cpp - Tests for the HEAAN-style CKKS backend ----------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ckks/BigCkks.h"

#include "hisa/Hisa.h"
#include "support/Error.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace chet;

static_assert(HisaBackend<BigCkksBackend>,
              "BigCkksBackend must satisfy the HISA concept");

namespace {

constexpr double kScale = 1073741824.0; // 2^30

class BigCkksTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    BigCkksParams P;
    P.LogN = 11;
    P.LogQ = 150;
    P.Security = SecurityLevel::None; // test-size ring
    Backend = new BigCkksBackend(P);
  }
  static void TearDownTestSuite() {
    delete Backend;
    Backend = nullptr;
  }

  std::vector<double> randomValues(uint64_t Seed, double Lo = -10,
                                   double Hi = 10) {
    Prng Rng(Seed);
    std::vector<double> V(Backend->slotCount());
    for (auto &X : V)
      X = Rng.nextDouble(Lo, Hi);
    return V;
  }

  BigCkksBackend::Ct encryptValues(const std::vector<double> &V,
                                   double Scale = kScale) {
    return Backend->encrypt(Backend->encode(V, Scale));
  }

  std::vector<double> decryptValues(const BigCkksBackend::Ct &C) {
    return Backend->decode(Backend->decrypt(C));
  }

  static BigCkksBackend *Backend;
};

BigCkksBackend *BigCkksTest::Backend = nullptr;

TEST_F(BigCkksTest, EncryptDecryptRoundTrip) {
  auto V = randomValues(1);
  auto C = encryptValues(V);
  EXPECT_EQ(Backend->logQOf(C), Backend->params().LogQ);
  auto Back = decryptValues(C);
  // Fresh-encryption noise is ~2^13 in the coefficients, i.e. ~2^-17
  // after removing the 2^30 scale.
  for (size_t I = 0; I < V.size(); ++I)
    ASSERT_NEAR(Back[I], V[I], 5e-5) << "slot " << I;
}

TEST_F(BigCkksTest, HomomorphicAddSub) {
  auto A = randomValues(2), B = randomValues(3);
  auto CA = encryptValues(A), CB = encryptValues(B);
  auto Sum = add(*Backend, CA, CB);
  auto Diff = sub(*Backend, CA, CB);
  auto SumBack = decryptValues(Sum);
  auto DiffBack = decryptValues(Diff);
  for (size_t I = 0; I < A.size(); ++I) {
    ASSERT_NEAR(SumBack[I], A[I] + B[I], 1e-4);
    ASSERT_NEAR(DiffBack[I], A[I] - B[I], 1e-4);
  }
}

TEST_F(BigCkksTest, AddSubPlainAndScalar) {
  auto A = randomValues(4), B = randomValues(5);
  auto C = encryptValues(A);
  auto P = Backend->encode(B, kScale);
  Backend->addPlainAssign(C, P);
  Backend->addScalarAssign(C, 2.5);
  Backend->subScalarAssign(C, 1.0);
  auto Back = decryptValues(C);
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_NEAR(Back[I], A[I] + B[I] + 1.5, 1e-4);
}

TEST_F(BigCkksTest, CiphertextMultiplicationWithExactRescale) {
  auto A = randomValues(6, -3, 3), B = randomValues(7, -3, 3);
  auto CA = encryptValues(A), CB = encryptValues(B);
  auto Prod = mul(*Backend, CA, CB);
  EXPECT_NEAR(Backend->scaleOf(Prod), kScale * kScale, 1.0);
  rescaleToFloor(*Backend, Prod, kScale);
  // CKKS rescaling by powers of two is exact: back to precisely 2^30.
  EXPECT_NEAR(Backend->scaleOf(Prod), kScale, 1e-9);
  EXPECT_EQ(Backend->logQOf(Prod), Backend->params().LogQ - 30);
  auto Back = decryptValues(Prod);
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_NEAR(Back[I], A[I] * B[I], 1e-3);
}

TEST_F(BigCkksTest, SquaringTwice) {
  auto A = randomValues(8, -2, 2);
  auto C = encryptValues(A);
  for (int Round = 0; Round < 2; ++Round) {
    auto C2 = mul(*Backend, C, C);
    rescaleToFloor(*Backend, C2, kScale);
    C = C2;
  }
  auto Back = decryptValues(C);
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_NEAR(Back[I], std::pow(A[I], 4),
                1e-2 * std::max(1.0, std::fabs(Back[I])));
}

TEST_F(BigCkksTest, MulPlainAndScalar) {
  auto A = randomValues(9, -4, 4), W = randomValues(10, -2, 2);
  auto C = encryptValues(A);
  auto P = Backend->encode(W, kScale);
  auto CP = mulPlain(*Backend, C, P);
  rescaleToFloor(*Backend, CP, kScale);
  auto BackP = decryptValues(CP);
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_NEAR(BackP[I], A[I] * W[I], 1e-3);

  auto CS = mulScalar(*Backend, C, -1.5, uint64_t(kScale));
  rescaleToFloor(*Backend, CS, kScale);
  auto BackS = decryptValues(CS);
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_NEAR(BackS[I], A[I] * -1.5, 1e-3);
}

TEST_F(BigCkksTest, RotationWithAndWithoutDedicatedKeys) {
  auto A = randomValues(11);
  size_t Slots = Backend->slotCount();
  for (int Step : {1, 8, 5, -3}) { // 5 and -3 exercise the pow2 fallback
    auto C = encryptValues(A);
    Backend->rotLeftAssign(C, Step);
    auto Back = decryptValues(C);
    int S = ((Step % static_cast<int>(Slots)) + Slots) % Slots;
    for (size_t I = 0; I < Slots; ++I)
      ASSERT_NEAR(Back[I], A[(I + S) % Slots], 1e-4)
          << "step " << Step << " slot " << I;
  }
}

TEST_F(BigCkksTest, MaxRescaleReturnsPowersOfTwo) {
  auto C = encryptValues(randomValues(12));
  EXPECT_EQ(Backend->maxRescale(C, 1), 1u);
  EXPECT_EQ(Backend->maxRescale(C, 2), 2u);
  EXPECT_EQ(Backend->maxRescale(C, 3), 2u);
  EXPECT_EQ(Backend->maxRescale(C, 1 << 20), uint64_t(1) << 20);
  EXPECT_EQ(Backend->maxRescale(C, (1 << 20) + 12345), uint64_t(1) << 20);
  // Bounded by the remaining modulus: bring the ciphertext down to a
  // 40-bit modulus, then ask for a huge divisor.
  while (Backend->logQOf(C) > 50) {
    Backend->mulScalarAssign(C, 1.0, uint64_t(1) << 30);
    Backend->rescaleAssign(C, uint64_t(1) << 30);
  }
  int LogQ = Backend->logQOf(C);
  ASSERT_LT(LogQ, 63);
  uint64_t Huge = uint64_t(1) << 62;
  EXPECT_LE(Backend->maxRescale(C, Huge), uint64_t(1) << (LogQ - 2));
}

TEST_F(BigCkksTest, ModulusAlignmentOnAdd) {
  auto A = randomValues(13, -2, 2), B = randomValues(14, -2, 2);
  auto CA = encryptValues(A), CB = encryptValues(B);
  Backend->rescaleAssign(CA, 1); // no-op
  // Drop CA's modulus via a scalar multiply and exact rescale.
  Backend->mulScalarAssign(CA, 1.0, uint64_t(1) << 20);
  Backend->rescaleAssign(CA, uint64_t(1) << 20);
  EXPECT_LT(Backend->logQOf(CA), Backend->logQOf(CB));
  auto Sum = add(*Backend, CA, CB);
  EXPECT_EQ(Backend->logQOf(Sum), Backend->logQOf(CA));
  auto Back = decryptValues(Sum);
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_NEAR(Back[I], A[I] + B[I], 1e-3);
}

TEST_F(BigCkksTest, SecurityCheckRejectsOversizedModulus) {
  BigCkksParams P;
  P.LogN = 11;
  P.LogQ = 150;
  P.Security = SecurityLevel::Classical128;
  EXPECT_THROW(BigCkksBackend{P}, SecurityBudgetError);
}

TEST_F(BigCkksTest, DeterministicUnderSeed) {
  BigCkksParams P;
  P.LogN = 10;
  P.LogQ = 60;
  P.LogSpecial = 60;
  P.Security = SecurityLevel::None;
  P.Seed = 99;
  BigCkksBackend B1(P), B2(P);
  std::vector<double> V(B1.slotCount(), 1.25);
  auto C1 = B1.encrypt(B1.encode(V, 1 << 20));
  auto C2 = B2.encrypt(B2.encode(V, 1 << 20));
  for (size_t K = 0; K < 4; ++K)
    EXPECT_EQ(C1.C0[K].compare(C2.C0[K]), 0);
}

} // namespace
