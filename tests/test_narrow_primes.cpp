//===- test_narrow_primes.cpp - Narrow-chain end-to-end gate ---------------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 28-32-bit prime-chain gate (DESIGN.md section 5i): compiling a zoo
/// network under PrimeChainWidth::Narrow must produce a chain whose scale
/// primes all sit inside the packed-NTT word bound, the encrypted output
/// must stay within the static PrecisionBound the compiler recorded, and
/// serialized outputs must be bit-identical at 1, 2, and 8 threads (the
/// narrow kernels inherit the deterministic-threading contract). Also
/// unit-tests the chain-width plumbing: the explicit toggle, the
/// scale-prime cap, and the security-table chain-sizing helper.
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"

#include "ckks/SecurityTable.h"
#include "ckks/Serialization.h"
#include "core/Evaluate.h"
#include "nn/Networks.h"
#include "runtime/ReferenceOps.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <vector>

using namespace chet;

namespace {

CompilerOptions narrowOptions() {
  CompilerOptions Options;
  Options.Scheme = SchemeKind::RnsCkks;
  Options.Security = SecurityLevel::None;
  Options.ChainWidth = PrimeChainWidth::Narrow;
  // Library-default 2^40 scales: every rescale sheds 30-bit primes, so
  // the oscillating scale drift of the narrow chain is exercised.
  Options.Scales = ScaleConfig();
  return Options;
}

/// Restores the CHET_NUM_THREADS / hardware default pool on scope exit.
struct PoolGuard {
  ~PoolGuard() { setGlobalThreadCount(0); }
};

TEST(NarrowPrimes, ExplicitWidthToggleResolves) {
  EXPECT_TRUE(narrowChainRequested(PrimeChainWidth::Narrow));
  EXPECT_FALSE(narrowChainRequested(PrimeChainWidth::Wide));
}

TEST(NarrowPrimes, SecurityTableChainSizing) {
  // (881 - 60 - 60) bits of budget at LogN = 15 / 128-bit classical.
  EXPECT_EQ(maxScalePrimesForBudget(15, SecurityLevel::Classical128, 60, 60,
                                    40),
            19);
  EXPECT_EQ(maxScalePrimesForBudget(15, SecurityLevel::Classical128, 60, 60,
                                    30),
            25);
  // Narrow never buys fewer chain entries than wide at any dimension.
  for (int LogN = 10; LogN <= 16; ++LogN)
    EXPECT_GE(maxScalePrimesForBudget(LogN, SecurityLevel::Classical128, 60,
                                      60, 30),
              maxScalePrimesForBudget(LogN, SecurityLevel::Classical128, 60,
                                      60, 40));
  // Base + special alone can overrun small dimensions.
  EXPECT_EQ(maxScalePrimesForBudget(11, SecurityLevel::Classical128, 60, 60,
                                    30),
            0);
}

TEST(NarrowPrimes, LeNetChainScalePrimesAreNarrow) {
  TensorCircuit Circ = makeLeNet5Small(2);
  CompiledCircuit Compiled = compileCircuit(Circ, narrowOptions());
  ASSERT_TRUE(Compiled.Rns.has_value());
  const RnsCkksParams &P = *Compiled.Rns;
  ASSERT_GE(P.ChainPrimes.size(), 2u);
  // The base and special primes stay wide (they must hold the output
  // scale plus precision headroom); every scale prime sits inside the
  // 28-32-bit packed-NTT domain.
  EXPECT_GE(P.ChainPrimes.front(), uint64_t(1) << 59);
  EXPECT_GE(P.SpecialPrime, uint64_t(1) << 59);
  for (size_t I = 1; I < P.ChainPrimes.size(); ++I) {
    EXPECT_TRUE(isNarrowModulus(P.ChainPrimes[I]))
        << "scale prime " << I << " = " << P.ChainPrimes[I];
    EXPECT_GE(P.ChainPrimes[I], uint64_t(1) << 28);
  }

  // The wide policy with the same options keeps 40-bit scale primes.
  CompilerOptions Wide = narrowOptions();
  Wide.ChainWidth = PrimeChainWidth::Wide;
  CompiledCircuit WideCompiled = compileCircuit(Circ, Wide);
  ASSERT_TRUE(WideCompiled.Rns.has_value());
  for (size_t I = 1; I < WideCompiled.Rns->ChainPrimes.size(); ++I)
    EXPECT_FALSE(isNarrowModulus(WideCompiled.Rns->ChainPrimes[I]));
}

TEST(NarrowPrimes, LeNetErrorWithinStaticBoundAndThreadInvariant) {
  PoolGuard Guard;
  TensorCircuit Circ = makeLeNet5Small(2);
  CompiledCircuit Compiled = compileCircuit(Circ, narrowOptions());
  ASSERT_TRUE(Compiled.Noise.Analyzed);
  ASSERT_GT(Compiled.Noise.ErrorBound, 0);

  Tensor3 Image = randomImageFor(Circ, 7);
  Tensor3 Want = Circ.evaluatePlain(Image);

  // One inference per thread count, each from a freshly keyed backend
  // (same seed, so key material is identical); decrypted outputs must
  // honor the static bound and serialized ciphertexts must not depend
  // on the lane count.
  std::vector<ByteBuffer> RefBytes;
  for (unsigned Threads : {1u, 2u, 8u}) {
    setGlobalThreadCount(Threads);
    RnsCkksBackend Backend = makeRnsBackend(Compiled);
    TensorLayout L =
        circuitInputLayout(Circ, Compiled.Policy, Backend.slotCount());
    auto Enc = encryptTensor(Backend, Image, L, Compiled.Scales);
    auto Out = evaluateCircuit(Backend, Circ, Enc, Compiled.Scales,
                               Compiled.Policy);

    Tensor3 Got = decryptTensor(Backend, Out);
    double Err = maxAbsDiff(Got, Want);
    EXPECT_LE(Err, Compiled.Noise.ErrorBound)
        << "measured error escaped the static bound at " << Threads
        << " threads";

    std::vector<ByteBuffer> Bytes;
    for (const auto &Ct : Out.Cts)
      Bytes.push_back(serialize(Ct));
    if (RefBytes.empty()) {
      RefBytes = std::move(Bytes);
    } else {
      ASSERT_EQ(RefBytes.size(), Bytes.size());
      for (size_t I = 0; I < Bytes.size(); ++I)
        EXPECT_EQ(RefBytes[I], Bytes[I])
            << "ciphertext " << I << " diverged at " << Threads
            << " threads";
    }
  }
}

} // namespace
