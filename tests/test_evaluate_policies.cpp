//===- test_evaluate_policies.cpp - Evaluator under all layout policies ----===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs full circuits through the evaluator under every layout policy on
/// the PlainBackend and checks exact agreement with the reference engine
/// -- the property the layout-selection search relies on: all four
/// policies compute the same function, only their cost differs.
///
//===----------------------------------------------------------------------===//

#include "core/Evaluate.h"

#include "hisa/PlainBackend.h"
#include "nn/Networks.h"
#include "runtime/ReferenceOps.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

using namespace chet;

namespace {

class PolicyTest : public ::testing::TestWithParam<LayoutPolicy> {};

TEST_P(PolicyTest, LeNetSmallMatchesReference) {
  TensorCircuit Circ = makeLeNet5Small(/*Reduction=*/2);
  Tensor3 Image = randomImageFor(Circ, 7);
  PlainBackend Backend(12);
  ScaleConfig S;
  Tensor3 Got =
      runEncryptedInference(Backend, Circ, Image, S, GetParam());
  Tensor3 Want = Circ.evaluatePlain(Image);
  ASSERT_EQ(Got.C, Want.C);
  EXPECT_LT(maxAbsDiff(Got, Want), 1e-9)
      << "policy " << layoutPolicyName(GetParam());
}

TEST_P(PolicyTest, IndustrialMatchesReference) {
  TensorCircuit Circ = makeIndustrial(/*Reduction=*/8);
  Tensor3 Image = randomImageFor(Circ, 8);
  PlainBackend Backend(12);
  ScaleConfig S;
  Tensor3 Got =
      runEncryptedInference(Backend, Circ, Image, S, GetParam());
  Tensor3 Want = Circ.evaluatePlain(Image);
  EXPECT_LT(maxAbsDiff(Got, Want), 1e-9)
      << "policy " << layoutPolicyName(GetParam());
}

TEST_P(PolicyTest, SqueezeNetMatchesReference) {
  TensorCircuit Circ = makeSqueezeNetCifar(/*Reduction=*/8);
  Tensor3 Image = randomImageFor(Circ, 9);
  PlainBackend Backend(12);
  ScaleConfig S;
  Tensor3 Got =
      runEncryptedInference(Backend, Circ, Image, S, GetParam());
  Tensor3 Want = Circ.evaluatePlain(Image);
  EXPECT_LT(maxAbsDiff(Got, Want), 1e-8)
      << "policy " << layoutPolicyName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyTest,
                         ::testing::Values(LayoutPolicy::AllHW,
                                           LayoutPolicy::AllCHW,
                                           LayoutPolicy::ConvHW,
                                           LayoutPolicy::FcCHW));

TEST(Evaluate, ConcatCircuitUnderBothBaseLayouts) {
  // A small DAG with fan-out and concat (the Fire-module shape, without
  // the fusion rewrite).
  Prng Rng(4);
  TensorCircuit Circ("fire");
  int X = Circ.input(2, 8, 8);
  ConvWeights Sq(2, 2, 1, 1), E1(4, 2, 1, 1), E3(4, 2, 3, 3);
  for (double &V : Sq.W)
    V = Rng.nextDouble(-1, 1);
  for (double &V : E1.W)
    V = Rng.nextDouble(-1, 1);
  for (double &V : E3.W)
    V = Rng.nextDouble(-1, 1);
  int S = Circ.conv2d(X, Sq, 1, 0);
  int A = Circ.conv2d(S, E1, 1, 0);
  int B = Circ.conv2d(S, E3, 1, 1);
  int Cat = Circ.concatChannels(A, B);
  int Act = Circ.polyActivation(Cat, 0.25, 0.5);
  Circ.output(Act);

  Tensor3 Image = randomImageFor(Circ, 10);
  Tensor3 Want = Circ.evaluatePlain(Image);
  PlainBackend Backend(11);
  ScaleConfig Sc;
  for (LayoutPolicy P : {LayoutPolicy::AllHW, LayoutPolicy::AllCHW}) {
    Tensor3 Got = runEncryptedInference(Backend, Circ, Image, Sc, P);
    EXPECT_LT(maxAbsDiff(Got, Want), 1e-9)
        << "policy " << layoutPolicyName(P);
  }
}

TEST(Evaluate, MaskNeedsPropagateThroughConcat) {
  TensorCircuit Circ("m");
  int X = Circ.input(1, 8, 8);
  ConvWeights C1(1, 1, 1, 1), C2(2, 2, 3, 3);
  C1.W[0] = 1.0;
  int A = Circ.conv2d(X, C1, 1, 0);
  int B = Circ.conv2d(X, C1, 1, 0);
  int Cat = Circ.concatChannels(A, B);
  int Out = Circ.conv2d(Cat, C2, 1, 1); // padded conv downstream
  Circ.output(Out);
  auto Needs = chet::detail::computeMaskNeeds(Circ, LayoutPolicy::AllHW);
  EXPECT_TRUE(Needs[A]);
  EXPECT_TRUE(Needs[B]);
  EXPECT_TRUE(Needs[Cat]);
  EXPECT_FALSE(Needs[Out]); // nothing after it needs zero margins
}

TEST(Evaluate, InputLayoutFollowsPolicy) {
  TensorCircuit Circ = makeLeNet5Small(4);
  EXPECT_EQ(circuitInputLayout(Circ, LayoutPolicy::AllCHW, 2048).Kind,
            LayoutKind::CHW);
  EXPECT_EQ(circuitInputLayout(Circ, LayoutPolicy::AllHW, 2048).Kind,
            LayoutKind::HW);
  EXPECT_EQ(circuitInputLayout(Circ, LayoutPolicy::ConvHW, 2048).Kind,
            LayoutKind::HW);
  // LeNet needs 4 physical margin cells (pad-2 conv at stride 2).
  EXPECT_EQ(circuitInputLayout(Circ, LayoutPolicy::AllHW, 2048).OffY, 4);
}

} // namespace
