//===- test_fault_backend.cpp - Fault-injection backend tests --------------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs real tensor kernels (conv, pooling, fully connected) under the
/// FaultInjectionBackend and checks that every fault kind surfaces as the
/// right typed error or as detectable corruption -- never as a crash --
/// and that the bounded retry wrapper recovers from transient faults.
///
//===----------------------------------------------------------------------===//

#include "hisa/FaultInjectionBackend.h"

#include "ckks/RnsCkks.h"
#include "core/Evaluate.h"
#include "hisa/PlainBackend.h"
#include "nn/Networks.h"
#include "runtime/ReferenceOps.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace chet;

static_assert(HisaBackend<FaultInjectionBackend<PlainBackend>>,
              "the fault adapter must satisfy the HISA concept");
static_assert(HisaBackend<FaultInjectionBackend<RnsCkksBackend>>,
              "the fault adapter must wrap real CKKS backends too");

namespace {

TensorCircuit lenet() { return makeLeNet5Small(/*Reduction=*/2); }

TEST(FaultBackend, ZeroRatesAreTransparent) {
  TensorCircuit Circ = lenet();
  Tensor3 Image = randomImageFor(Circ, 31);
  PlainBackend Inner(12);
  FaultInjectionBackend<PlainBackend> Faulty(Inner, FaultPlan{});
  ScaleConfig S;
  Tensor3 Got = runEncryptedInference(Faulty, Circ, Image, S,
                                      LayoutPolicy::AllHW);
  Tensor3 Want = Circ.evaluatePlain(Image);
  EXPECT_LT(maxAbsDiff(Got, Want), 1e-9);
  EXPECT_EQ(Faulty.stats().BitFlips, 0);
  EXPECT_EQ(Faulty.stats().DroppedRescales, 0);
  EXPECT_EQ(Faulty.stats().TransientFaults, 0);
}

TEST(FaultBackend, BitFlipsCorruptWithoutCrashing) {
  TensorCircuit Circ = lenet();
  Tensor3 Image = randomImageFor(Circ, 32);
  PlainBackend Inner(12);
  FaultPlan Plan;
  Plan.Seed = 77;
  Plan.BitFlipRate = 0.01;
  FaultInjectionBackend<PlainBackend> Faulty(Inner, Plan);
  ScaleConfig S;
  Tensor3 Got = runEncryptedInference(Faulty, Circ, Image, S,
                                      LayoutPolicy::AllCHW);
  Tensor3 Want = Circ.evaluatePlain(Image);
  EXPECT_GT(Faulty.stats().BitFlips, 0);
  // The corruption must be loud: a flipped slot is off by ~1e9, nothing
  // resembling the reference output.
  EXPECT_GT(maxAbsDiff(Got, Want), 1.0);
}

TEST(FaultBackend, FaultSitesAreDeterministicUnderSeed) {
  TensorCircuit Circ = lenet();
  Tensor3 Image = randomImageFor(Circ, 33);
  ScaleConfig S;
  FaultPlan Plan;
  Plan.Seed = 78;
  Plan.BitFlipRate = 0.01;
  Tensor3 Runs[2];
  long Flips[2];
  for (int I = 0; I < 2; ++I) {
    PlainBackend Inner(12);
    FaultInjectionBackend<PlainBackend> Faulty(Inner, Plan);
    Runs[I] = runEncryptedInference(Faulty, Circ, Image, S,
                                    LayoutPolicy::AllHW);
    Flips[I] = Faulty.stats().BitFlips;
  }
  EXPECT_GT(Flips[0], 0);
  EXPECT_EQ(Flips[0], Flips[1]);
  EXPECT_LT(maxAbsDiff(Runs[0], Runs[1]), 1e-12);
}

TEST(FaultBackend, DroppedRescaleSurfacesAsScaleMismatch) {
  TensorCircuit Circ = lenet();
  Tensor3 Image = randomImageFor(Circ, 34);
  PlainBackend Inner(12);
  FaultPlan Plan;
  Plan.Seed = 79;
  Plan.DropRescaleRate = 1.0;
  FaultInjectionBackend<PlainBackend> Faulty(Inner, Plan);
  ScaleConfig S;
  // The omitted rescale leaves the scale inflated; the next scale-checked
  // addition reports it as a typed error instead of computing garbage.
  try {
    runEncryptedInference(Faulty, Circ, Image, S, LayoutPolicy::AllHW);
    FAIL() << "expected a ChetError from the inflated scale";
  } catch (const ChetError &E) {
    EXPECT_EQ(E.code(), ErrorCode::ScaleMismatch) << E.what();
  }
  EXPECT_GT(Faulty.stats().DroppedRescales, 0);
}

TEST(FaultBackend, TransientFaultIsTypedAndTransient) {
  TensorCircuit Circ = lenet();
  Tensor3 Image = randomImageFor(Circ, 35);
  PlainBackend Inner(12);
  FaultPlan Plan;
  Plan.Seed = 80;
  Plan.TransientRate = 1.0;
  Plan.MaxTransientFaults = 1;
  FaultInjectionBackend<PlainBackend> Faulty(Inner, Plan);
  ScaleConfig S;
  try {
    runEncryptedInference(Faulty, Circ, Image, S, LayoutPolicy::AllHW);
    FAIL() << "expected an injected transient fault";
  } catch (const ChetError &E) {
    EXPECT_EQ(E.code(), ErrorCode::TransientBackendFault);
    EXPECT_TRUE(E.isTransient());
  }
  EXPECT_EQ(Faulty.stats().TransientFaults, 1);
}

TEST(FaultBackend, RetryRecoversOnceFaultsAreExhausted) {
  TensorCircuit Circ = lenet();
  Tensor3 Image = randomImageFor(Circ, 36);
  PlainBackend Inner(12);
  FaultPlan Plan;
  Plan.Seed = 81;
  Plan.TransientRate = 1.0;
  Plan.MaxTransientFaults = 2; // first two attempts fail, third is clean
  FaultInjectionBackend<PlainBackend> Faulty(Inner, Plan);
  ScaleConfig S;
  RetryPolicy Retry;
  Retry.MaxAttempts = 3;
  int Attempts = 0;
  Tensor3 Got = runEncryptedInferenceWithRetry(
      Faulty, Circ, Image, S, LayoutPolicy::AllHW, Retry,
      FcAlgorithm::Auto, &Attempts);
  EXPECT_EQ(Attempts, 3);
  EXPECT_EQ(Faulty.stats().TransientFaults, 2);
  Tensor3 Want = Circ.evaluatePlain(Image);
  EXPECT_LT(maxAbsDiff(Got, Want), 1e-9);
}

TEST(FaultBackend, RetryGivesUpAfterTheAttemptBudget) {
  TensorCircuit Circ = lenet();
  Tensor3 Image = randomImageFor(Circ, 37);
  PlainBackend Inner(12);
  FaultPlan Plan;
  Plan.Seed = 82;
  Plan.TransientRate = 1.0; // unbounded faults: never heals
  FaultInjectionBackend<PlainBackend> Faulty(Inner, Plan);
  ScaleConfig S;
  RetryPolicy Retry;
  Retry.MaxAttempts = 2;
  EXPECT_THROW(runEncryptedInferenceWithRetry(Faulty, Circ, Image, S,
                                              LayoutPolicy::AllHW, Retry),
               TransientBackendFaultError);
  EXPECT_EQ(Faulty.stats().TransientFaults, 2);
}

TEST(FaultBackend, RetryDoesNotSwallowPermanentErrors) {
  TensorCircuit Circ = lenet();
  Tensor3 Image = randomImageFor(Circ, 38);
  PlainBackend Inner(12);
  FaultPlan Plan;
  Plan.Seed = 83;
  Plan.DropRescaleRate = 1.0; // yields ScaleMismatch: not transient
  FaultInjectionBackend<PlainBackend> Faulty(Inner, Plan);
  ScaleConfig S;
  RetryPolicy Retry;
  Retry.MaxAttempts = 5;
  int Attempts = 0;
  EXPECT_THROW(runEncryptedInferenceWithRetry(Faulty, Circ, Image, S,
                                              LayoutPolicy::AllHW, Retry,
                                              FcAlgorithm::Auto, &Attempts),
               ScaleMismatchError);
  EXPECT_EQ(Attempts, 1); // no retry on a non-transient error
}

TEST(FaultBackend, RealCkksCiphertextBitFlipIsLoudNotFatal) {
  RnsCkksParams P = RnsCkksParams::create(11, 3);
  P.Security = SecurityLevel::None;
  RnsCkksBackend Inner(P);
  FaultPlan Plan;
  Plan.Seed = 84;
  Plan.BitFlipRate = 1.0;
  FaultInjectionBackend<RnsCkksBackend> Faulty(Inner, Plan);

  Prng Rng(85);
  std::vector<double> V(Faulty.slotCount());
  for (double &X : V)
    X = Rng.nextDouble(-4, 4);
  auto A = Faulty.encrypt(Faulty.encode(V, 1LL << 40)); // corrupted here
  auto B = Faulty.encrypt(Faulty.encode(V, 1LL << 40));
  Faulty.addAssign(A, B);
  auto Back = Faulty.decode(Faulty.decrypt(A));
  EXPECT_GT(Faulty.stats().BitFlips, 0);
  int SlotsOff = 0;
  for (size_t I = 0; I < V.size(); ++I)
    SlotsOff += std::fabs(Back[I] - 2 * V[I]) > 1.0;
  // A flipped NTT word smears over every slot: corruption is detectable,
  // and decryption neither crashes nor silently yields the true result.
  EXPECT_GT(SlotsOff, static_cast<int>(V.size()) / 2);
}

} // namespace
