//===- test_primegen.cpp - Unit tests for prime generation ----------------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "math/PrimeGen.h"

#include "math/UIntArith.h"

#include <gtest/gtest.h>

#include <set>

using namespace chet;

namespace {

TEST(PrimeGen, ProducesRequestedCount) {
  auto Primes = generateNttPrimes(40, 13, 10);
  EXPECT_EQ(Primes.size(), 10u);
}

TEST(PrimeGen, PrimesHaveCorrectSizeAndCongruence) {
  for (int LogN : {10, 13, 15}) {
    for (int Bits : {30, 45, 60}) {
      auto Primes = generateNttPrimes(Bits, LogN, 5);
      for (uint64_t P : Primes) {
        EXPECT_TRUE(isPrime(P));
        EXPECT_EQ(P >> (Bits - 1), 1u) << "wrong bit size";
        EXPECT_EQ(P % (uint64_t(1) << (LogN + 1)), 1u)
            << "not NTT-friendly for LogN=" << LogN;
      }
    }
  }
}

TEST(PrimeGen, PrimesAreDistinctAndDecreasing) {
  auto Primes = generateNttPrimes(55, 14, 20);
  std::set<uint64_t> Unique(Primes.begin(), Primes.end());
  EXPECT_EQ(Unique.size(), Primes.size());
  for (size_t I = 1; I < Primes.size(); ++I)
    EXPECT_LT(Primes[I], Primes[I - 1]);
}

TEST(PrimeGen, ExclusionIsHonored) {
  auto First = generateNttPrimes(50, 12, 5);
  auto Second = generateNttPrimes(50, 12, 5, First);
  for (uint64_t P : Second)
    EXPECT_EQ(std::count(First.begin(), First.end(), P), 0);
}

} // namespace
