//===- test_kernels_encrypted.cpp - Kernels under real encryption ----------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the tensor kernels under both real CKKS backends on a small
/// conv -> activation -> pool -> FC pipeline and checks the decrypted
/// results against the float reference. This is the end-to-end property
/// the whole system rests on: the same kernel template code that passed
/// the plain tests must stay within fixed-point tolerance under real
/// encrypted evaluation, including rescaling and key switching.
///
//===----------------------------------------------------------------------===//

#include "runtime/Kernels.h"

#include "ckks/BigCkks.h"
#include "ckks/RnsCkks.h"
#include "runtime/ReferenceOps.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

using namespace chet;

namespace {

Tensor3 randomTensor(int C, int H, int W, uint64_t Seed) {
  Tensor3 T(C, H, W);
  Prng Rng(Seed);
  for (double &V : T.Data)
    V = Rng.nextDouble(-1, 1);
  return T;
}

ConvWeights randomConv(int Cout, int Cin, int K, uint64_t Seed) {
  ConvWeights Wt(Cout, Cin, K, K);
  Prng Rng(Seed);
  for (double &V : Wt.W)
    V = Rng.nextDouble(-0.5, 0.5);
  for (double &V : Wt.Bias)
    V = Rng.nextDouble(-0.2, 0.2);
  return Wt;
}

FcWeights randomFc(int Out, int In, uint64_t Seed) {
  FcWeights Wt(Out, In);
  Prng Rng(Seed);
  for (double &V : Wt.W)
    V = Rng.nextDouble(-0.3, 0.3);
  for (double &V : Wt.Bias)
    V = Rng.nextDouble(-0.2, 0.2);
  return Wt;
}

template <HisaBackend B>
void runPipeline(B &Backend, LayoutKind Kind, double Tolerance) {
  ScaleConfig S = ScaleConfig::fromExponents(30, 30, 30, 16);
  Tensor3 In = randomTensor(1, 8, 8, 1);
  ConvWeights Conv = randomConv(2, 1, 3, 2);
  FcWeights Fc = randomFc(4, 2 * 4 * 4, 3);

  TensorLayout L =
      makeInputLayout(Kind, 1, 8, 8, /*PadPhys=*/1, Backend.slotCount());
  auto Enc = encryptTensor(Backend, In, L, S);
  auto C1 = conv2d(Backend, Enc, Conv, 1, 1, S);
  auto A1 = polyActivation(Backend, C1, 0.25, 0.5, S);
  auto P1 = averagePool(Backend, A1, 2, 2, S);
  auto Out = fullyConnected(Backend, P1, Fc, S);
  Tensor3 Got = decryptTensor(Backend, Out);

  Tensor3 Want = refFullyConnected(
      refAveragePool(refPolyActivation(refConv2d(In, Conv, 1, 1), 0.25, 0.5),
                     2, 2),
      Fc);
  ASSERT_EQ(Got.C, Want.C);
  EXPECT_LT(maxAbsDiff(Got, Want), Tolerance);
}

TEST(EncryptedKernels, RnsCkksPipelineHW) {
  RnsCkksParams P = RnsCkksParams::create(/*LogN=*/12, /*Levels=*/10,
                                          /*FirstBits=*/60, /*ScaleBits=*/30);
  P.Security = SecurityLevel::None;
  RnsCkksBackend Backend(P);
  runPipeline(Backend, LayoutKind::HW, 1e-2);
}

TEST(EncryptedKernels, RnsCkksPipelineCHW) {
  RnsCkksParams P = RnsCkksParams::create(12, 10, 60, 30);
  P.Security = SecurityLevel::None;
  RnsCkksBackend Backend(P);
  runPipeline(Backend, LayoutKind::CHW, 1e-2);
}

TEST(EncryptedKernels, BigCkksPipelineHW) {
  BigCkksParams P;
  P.LogN = 12;
  P.LogQ = 400;
  P.Security = SecurityLevel::None;
  BigCkksBackend Backend(P);
  runPipeline(Backend, LayoutKind::HW, 1e-2);
}

TEST(EncryptedKernels, BigCkksPipelineCHW) {
  BigCkksParams P;
  P.LogN = 12;
  P.LogQ = 400;
  P.Security = SecurityLevel::None;
  BigCkksBackend Backend(P);
  runPipeline(Backend, LayoutKind::CHW, 1e-2);
}

TEST(EncryptedKernels, BsgsFcUnderRealEncryption) {
  // The BSGS fully connected layer uses arbitrary-step rotations (baby
  // steps and giant steps); under the stock power-of-two key set they go
  // through the multi-hop fallback and must still be exact.
  RnsCkksParams P = RnsCkksParams::create(12, 6, 60, 30);
  P.Security = SecurityLevel::None;
  RnsCkksBackend Backend(P);
  ScaleConfig S = ScaleConfig::fromExponents(30, 30, 30, 16);
  Tensor3 In = randomTensor(2, 5, 5, 9);
  TensorLayout L =
      makeInputLayout(LayoutKind::CHW, 2, 5, 5, 0, Backend.slotCount());
  FcWeights Wt = randomFc(6, 2 * 5 * 5, 10);
  auto Enc = encryptTensor(Backend, In, L, S);
  auto Out = fullyConnectedBsgs(Backend, Enc, Wt, S);
  Tensor3 Got = decryptTensor(Backend, Out);
  Tensor3 Want = refFullyConnected(In, Wt);
  EXPECT_LT(maxAbsDiff(Got, Want), 1e-3);
}

TEST(EncryptedKernels, RnsConvMatchesReferenceClosely) {
  RnsCkksParams P = RnsCkksParams::create(12, 8, 60, 30);
  P.Security = SecurityLevel::None;
  RnsCkksBackend Backend(P);
  ScaleConfig S = ScaleConfig::fromExponents(30, 30, 30, 16);
  Tensor3 In = randomTensor(2, 6, 6, 5);
  ConvWeights Conv = randomConv(3, 2, 3, 6);
  TensorLayout L =
      makeInputLayout(LayoutKind::CHW, 2, 6, 6, 1, Backend.slotCount());
  auto Enc = encryptTensor(Backend, In, L, S);
  auto Out = conv2d(Backend, Enc, Conv, 1, 1, S);
  Tensor3 Got = decryptTensor(Backend, Out);
  Tensor3 Want = refConv2d(In, Conv, 1, 1);
  EXPECT_LT(maxAbsDiff(Got, Want), 1e-3);
}

} // namespace
