//===- test_analysis.cpp - Tests for the analysis interpretation -----------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"

#include "ckks/RnsCkks.h"
#include "core/Evaluate.h"
#include "hisa/Hisa.h"
#include "math/PrimeGen.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace chet;

namespace {

AnalysisConfig rnsConfig(int LogN = 12) {
  AnalysisConfig C;
  C.Scheme = SchemeKind::RnsCkks;
  C.LogN = LogN;
  C.ScalePrimeCandidates =
      generateNttPrimes(30, 16, 32, {RnsCkksParams::candidateSpecial()});
  return C;
}

AnalysisConfig ckksConfig(int LogN = 12) {
  AnalysisConfig C;
  C.Scheme = SchemeKind::BigCkks;
  C.LogN = LogN;
  return C;
}

TEST(Analysis, CkksMaxRescaleIsLargestPowerOfTwo) {
  AnalysisBackend B(ckksConfig());
  AnalysisBackend::Ct C;
  C.Scale = std::ldexp(1.0, 60);
  EXPECT_EQ(B.maxRescale(C, 1), 1u);
  EXPECT_EQ(B.maxRescale(C, 1023), 512u);
  EXPECT_EQ(B.maxRescale(C, 1024), 1024u);
}

TEST(Analysis, CkksRescaleTracksConsumedModulus) {
  AnalysisBackend B(ckksConfig());
  auto C = B.encrypt(B.encode({}, std::ldexp(1.0, 40)));
  B.mulScalarAssign(C, 1.0, uint64_t(1) << 30);
  uint64_t D = B.maxRescale(C, uint64_t(1) << 30);
  EXPECT_EQ(D, uint64_t(1) << 30);
  B.rescaleAssign(C, D);
  EXPECT_DOUBLE_EQ(B.maxLogConsumed(), 30.0);
  EXPECT_DOUBLE_EQ(B.scaleOf(C), std::ldexp(1.0, 40));
}

TEST(Analysis, RnsMaxRescaleWalksCandidateList) {
  AnalysisConfig Cfg = rnsConfig();
  AnalysisBackend B(Cfg);
  AnalysisBackend::Ct C;
  uint64_t Q0 = Cfg.ScalePrimeCandidates[0];
  uint64_t Q1 = Cfg.ScalePrimeCandidates[1];
  EXPECT_EQ(B.maxRescale(C, Q0 - 1), 1u);
  EXPECT_EQ(B.maxRescale(C, Q0), Q0);
  // Just below the two-prime product: still one prime.
  EXPECT_EQ(B.maxRescale(C, Q0 * 2), Q0);
  unsigned __int128 Two = static_cast<unsigned __int128>(Q0) * Q1;
  ASSERT_LT(Two, static_cast<unsigned __int128>(UINT64_MAX));
  EXPECT_EQ(B.maxRescale(C, static_cast<uint64_t>(Two)), Q0 * Q1);
}

TEST(Analysis, RnsRescaleConsumesInOrder) {
  AnalysisConfig Cfg = rnsConfig();
  AnalysisBackend B(Cfg);
  auto C = B.encrypt(B.encode({}, std::ldexp(1.0, 30)));
  B.mulScalarAssign(C, 1.0, uint64_t(1) << 30);
  B.mulScalarAssign(C, 1.0, uint64_t(1) << 30);
  uint64_t D = B.maxRescale(C, uint64_t(1) << 60);
  EXPECT_EQ(D, Cfg.ScalePrimeCandidates[0] * Cfg.ScalePrimeCandidates[1]);
  B.rescaleAssign(C, D);
  EXPECT_EQ(B.maxConsumedPrimes(), 2);
  // A second ciphertext consumes its own prefix of the same list.
  auto C2 = B.encrypt(B.encode({}, std::ldexp(1.0, 30)));
  B.mulScalarAssign(C2, 1.0, uint64_t(1) << 30);
  uint64_t D2 = B.maxRescale(C2, uint64_t(1) << 31);
  EXPECT_EQ(D2, Cfg.ScalePrimeCandidates[0]);
}

TEST(Analysis, RotationStepsAreCollectedNormalized) {
  AnalysisBackend B(rnsConfig(12)); // 2048 slots
  auto C = B.encrypt(B.encode({}, 1024.0));
  B.rotLeftAssign(C, 5);
  B.rotLeftAssign(C, 0); // no-op: not recorded
  B.rotRightAssign(C, 3);
  B.rotLeftAssign(C, 2048 + 7); // wraps to 7
  std::set<int> Expected = {5, 2048 - 3, 7};
  EXPECT_EQ(B.rotationSteps(), Expected);
}

TEST(Analysis, HoistedFanOutCollectsAmountsOnceAndPricesShared) {
  AnalysisConfig Cfg = rnsConfig(12);
  CostModel Model = CostModel::create(SchemeKind::RnsCkks, 12);
  Cfg.Cost = &Model;
  Cfg.TotalChainPrimes = 5;
  AnalysisBackend B(Cfg);
  auto C = B.encrypt(B.encode({}, 1024.0));
  // Repeated, negative-equivalent, and no-op amounts: the rotation-key
  // set collects each normalized amount exactly once.
  auto Out = B.rotLeftMany(C, {5, 5, 2048 - 3, 0, 2048 + 7});
  EXPECT_EQ(Out.size(), 5u);
  std::set<int> Expected = {5, 2048 - 3, 7};
  EXPECT_EQ(B.rotationSteps(), Expected);
  // Pricing: one shared decomposition plus a marginal term per nonzero
  // amount -- strictly cheaper than the four naive rotations.
  double Hoisted = B.totalCost();
  AnalysisBackend Naive(Cfg);
  auto C2 = Naive.encrypt(Naive.encode({}, 1024.0));
  for (int S : {5, 5, 2048 - 3, 2048 + 7})
    Naive.rotLeftAssign(C2, S);
  EXPECT_GT(Hoisted, 0.0);
  EXPECT_LT(Hoisted, Naive.totalCost());
  EXPECT_EQ(B.opCounts().at("rotateHoistShared"), 1u);
  EXPECT_EQ(B.opCounts().at("rotate"), 4u);
}

TEST(Analysis, CostAccumulatesOnlyWithModel) {
  AnalysisConfig Cfg = rnsConfig();
  AnalysisBackend NoCost(Cfg);
  auto C = NoCost.encrypt(NoCost.encode({}, 1024.0));
  NoCost.rotLeftAssign(C, 3);
  EXPECT_EQ(NoCost.totalCost(), 0.0);

  CostModel Model = CostModel::create(SchemeKind::RnsCkks, 12);
  Cfg.Cost = &Model;
  Cfg.TotalChainPrimes = 5;
  AnalysisBackend WithCost(Cfg);
  auto C2 = WithCost.encrypt(WithCost.encode({}, 1024.0));
  WithCost.rotLeftAssign(C2, 3);
  EXPECT_GT(WithCost.totalCost(), 0.0);
}

TEST(Analysis, Pow2FallbackCostsMoreHops) {
  CostModel Model = CostModel::create(SchemeKind::RnsCkks, 12);
  AnalysisConfig Cfg = rnsConfig();
  Cfg.Cost = &Model;
  Cfg.TotalChainPrimes = 5;

  // Baseline: the cost of encode + encrypt alone.
  AnalysisBackend EncodeOnly(Cfg);
  (void)EncodeOnly.encrypt(EncodeOnly.encode({}, 1024.0));
  double EncodeCost = EncodeOnly.totalCost();

  Cfg.SelectedRotationKeys = true;
  AnalysisBackend Selected(Cfg);
  auto C1 = Selected.encrypt(Selected.encode({}, 1024.0));
  Selected.rotLeftAssign(C1, 7); // 3 bits set

  Cfg.SelectedRotationKeys = false;
  AnalysisBackend Fallback(Cfg);
  auto C2 = Fallback.encrypt(Fallback.encode({}, 1024.0));
  Fallback.rotLeftAssign(C2, 7);

  EXPECT_NEAR(Fallback.totalCost() - EncodeCost,
              3 * (Selected.totalCost() - EncodeCost), 1e-6);
  // Power-of-two steps cost the same either way.
  AnalysisBackend FallbackPow2(Cfg);
  Cfg.SelectedRotationKeys = true;
  AnalysisBackend SelectedPow2(Cfg);
  auto C3 = SelectedPow2.encrypt(SelectedPow2.encode({}, 1024.0));
  SelectedPow2.rotLeftAssign(C3, 8);
  auto C4 = FallbackPow2.encrypt(FallbackPow2.encode({}, 1024.0));
  FallbackPow2.rotLeftAssign(C4, 8);
  EXPECT_NEAR(SelectedPow2.totalCost(), FallbackPow2.totalCost(), 1e-6);
}

TEST(Analysis, CostModelMonotoneInModulusState) {
  for (SchemeKind Scheme : {SchemeKind::RnsCkks, SchemeKind::BigCkks}) {
    CostModel M = CostModel::create(Scheme, 13, 400);
    double Lo = Scheme == SchemeKind::RnsCkks ? 3 : 120;
    double Hi = Scheme == SchemeKind::RnsCkks ? 9 : 360;
    EXPECT_LT(M.add(Lo), M.add(Hi));
    EXPECT_LT(M.mulPlain(Lo), M.mulPlain(Hi));
    EXPECT_LT(M.mulCipher(Lo), M.mulCipher(Hi));
    EXPECT_LT(M.rotate(Lo), M.rotate(Hi));
    // Key-switched ops dominate plain ops (Table 1's separation).
    EXPECT_GT(M.mulCipher(Hi), M.mulPlain(Hi));
  }
}

TEST(Analysis, RnsMulScalarVsMulPlainGapSmallerThanCkks) {
  // The crux of the HW/CHW tradeoff (Section 4.2): mulPlain/mulScalar is
  // about constant in RNS-CKKS but grows like log N in CKKS.
  CostModel Rns = CostModel::create(SchemeKind::RnsCkks, 14);
  CostModel Big = CostModel::create(SchemeKind::BigCkks, 14, 400);
  double RnsRatio = Rns.mulPlain(8) / Rns.mulScalar(8);
  double BigRatio = Big.mulPlain(300) / Big.mulScalar(300);
  EXPECT_LT(RnsRatio, 4.0);
  EXPECT_GT(BigRatio, 8.0);
}

} // namespace
