//===- test_verifier.cpp - Static verifier tests ---------------------------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the post-compile static verifier (Verifier.h): one intentionally
/// broken circuit per check -- scale mismatch, modulus-chain exhaustion,
/// missing rotation key, dead ciphertext -- asserting the exact
/// diagnostic code, severity, and layer provenance, plus clean LeNet-5
/// variants verifying with zero errors.
///
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"

#include "core/Validate.h"
#include "nn/Networks.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

using namespace chet;

namespace {

CompilerOptions baseOptions() {
  CompilerOptions O;
  O.Scheme = SchemeKind::RnsCkks;
  O.Security = SecurityLevel::Classical128;
  O.Scales = ScaleConfig::fromExponents(30, 30, 30, 16);
  return O;
}

const VerifierDiagnostic *findDiag(const std::vector<VerifierDiagnostic> &Ds,
                                   ErrorCode Code, Severity Sev) {
  for (const VerifierDiagnostic &D : Ds)
    if (D.Code == Code && D.Sev == Sev)
      return &D;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Seeded violations, one per check.
//===----------------------------------------------------------------------===//

/// Scale mismatch: concatenate the raw input (scale 2^30) with an
/// activation branch rescaled by primes of ~2^19.6 (3 * 2^18), which can
/// never land the branch back on a power-of-two scale. The concat
/// kernel's masked accumulation adds the two streams -- a scale mismatch
/// the verifier must pin on the concat node with both origins named.
TEST(Verifier, ReportsScaleMismatchWithLayerProvenance) {
  TensorCircuit Circ("mismatch");
  int In = Circ.input(1, 8, 8);
  int Act = Circ.polyActivation(In, 0.25, 0.5);
  int Cat = Circ.concatChannels(In, Act);
  Circ.output(Cat);

  CompiledCircuit Compiled;
  Compiled.Scheme = SchemeKind::RnsCkks;
  Compiled.Policy = LayoutPolicy::AllCHW;
  Compiled.Scales = ScaleConfig::fromExponents(30, 30, 30, 30);
  Compiled.LogN = 12;
  Compiled.PadPhys = Circ.padPhysNeeded();
  RnsCkksParams P;
  P.LogN = 12;
  P.ChainPrimes = {uint64_t(1) << 59};
  for (int I = 0; I < 8; ++I)
    P.ChainPrimes.push_back(uint64_t(3) << 18);
  P.StockPow2Keys = true; // every rotation servable; isolate the scale check
  Compiled.Rns = P;

  VerificationReport R = verifyCircuit(Circ, Compiled);
  EXPECT_FALSE(R.ok());
  const VerifierDiagnostic *D =
      findDiag(R.Diagnostics, ErrorCode::ScaleMismatch, Severity::Error);
  ASSERT_NE(D, nullptr) << R.str();
  EXPECT_GE(D->NodeId, 0);
  EXPECT_TRUE(D->Layer == "concat1" || D->Layer == "conv1" ||
              D->Layer == "act1")
      << D->Layer;
  EXPECT_FALSE(D->HisaOp.empty());
  EXPECT_NE(D->Message.find("mismatched scales"), std::string::npos)
      << D->Message;
  EXPECT_NE(R.str().find("error ScaleMismatch"), std::string::npos);
}

/// Level underflow: compile a LeNet variant, then chop the compiled
/// modulus chain down to two scaling primes. Re-verifying the mutilated
/// artifact must flag the rescales that no longer fit, attributed to the
/// layers issuing them.
TEST(Verifier, ReportsLevelExhaustionOnTruncatedChain) {
  TensorCircuit Circ = makeLeNet5Small(/*Reduction=*/4);
  CompiledCircuit Compiled = compileCircuit(Circ, baseOptions());
  ASSERT_TRUE(Compiled.Rns.has_value());
  ASSERT_GT(Compiled.Rns->ChainPrimes.size(), 3u);
  Compiled.Rns->ChainPrimes.resize(3); // base prime + two scaling primes

  VerificationReport R = verifyCircuit(Circ, Compiled);
  EXPECT_FALSE(R.ok());
  const VerifierDiagnostic *D =
      findDiag(R.Diagnostics, ErrorCode::LevelExhausted, Severity::Error);
  ASSERT_NE(D, nullptr) << R.str();
  EXPECT_GE(D->NodeId, 0);
  EXPECT_FALSE(D->Layer.empty());
  EXPECT_EQ(D->HisaOp, "maxRescale");
  EXPECT_NE(D->Message.find("exhausted"), std::string::npos) << D->Message;
}

/// Missing rotation key: remove one non-decomposable step from the
/// compiled key set (or, if every single step is covered by the others,
/// the whole set). The verifier must name the unservable rotation and
/// the layer that issues it.
TEST(Verifier, ReportsMissingRotationKey) {
  TensorCircuit Circ = makeLeNet5Small(/*Reduction=*/4);
  CompiledCircuit Compiled = compileCircuit(Circ, baseOptions());
  ASSERT_FALSE(Compiled.RotationKeys.empty());
  size_t Slots = size_t(1) << (Compiled.LogN - 1);

  std::set<int> Keys(Compiled.RotationKeys.begin(),
                     Compiled.RotationKeys.end());
  int Victim = -1;
  for (int Step : Keys) {
    std::set<int> Rest = Keys;
    Rest.erase(Step);
    if (!missingRotationSteps({Step}, Rest, Slots).empty()) {
      Victim = Step;
      break;
    }
  }
  if (Victim != -1) {
    Keys.erase(Victim);
    Compiled.RotationKeys.assign(Keys.begin(), Keys.end());
  } else {
    Compiled.RotationKeys.clear(); // no key survives alone; drop them all
  }

  VerificationReport R = verifyCircuit(Circ, Compiled);
  EXPECT_FALSE(R.ok());
  const VerifierDiagnostic *D =
      findDiag(R.Diagnostics, ErrorCode::MissingRotationKey, Severity::Error);
  ASSERT_NE(D, nullptr) << R.str();
  EXPECT_GE(D->NodeId, 0);
  EXPECT_FALSE(D->Layer.empty());
  // Kernels issue rotations singly or through hoisted fan-outs; the
  // missing key must be attributed to whichever instruction used it.
  EXPECT_TRUE(D->HisaOp == "rotLeftAssign" || D->HisaOp == "rotLeftMany")
      << D->HisaOp;
  EXPECT_NE(D->Message.find("no Galois key"), std::string::npos)
      << D->Message;
}

/// Hoisted fan-out with a missing key: issue a rotLeftMany directly at
/// the verifier's abstract machine with one unservable amount. The
/// diagnostic must carry the rotLeftMany op name, the current node, and
/// an error per batch (deduplicated), while the servable amounts pass.
TEST(Verifier, ReportsUnservableHoistedAmountWithProvenance) {
  VerifierBackendConfig VC;
  VC.Rns = true;
  VC.LogN = 12;
  VC.ScalePrimeCandidates = {uint64_t(1) << 30};
  VC.AvailableRotationSteps = {1, 2, 3};
  VC.StockPow2Keys = false;
  VerifierBackend VB(VC);
  VB.beginNode(7, "conv_taps");

  VerifierBackend::Ct C;
  C.Scale = double(uint64_t(1) << 30);
  // Amounts 1..3 are keyed; 5 = 4+1 has no key for the 4-hop, so it is
  // unservable by decomposition as well.
  std::vector<VerifierBackend::Ct> Out = VB.rotLeftMany(C, {1, 2, 5, 3});
  ASSERT_EQ(Out.size(), 4u);

  ASSERT_EQ(VB.events().size(), 1u);
  const VerifierEvent &E = VB.events()[0];
  EXPECT_EQ(E.Sev, Severity::Error);
  EXPECT_EQ(E.Code, ErrorCode::MissingRotationKey);
  EXPECT_EQ(std::string(E.HisaOp), "rotLeftMany");
  EXPECT_EQ(E.NodeId, 7);
  EXPECT_NE(E.Message.find("hoisted rotation by 5"), std::string::npos)
      << E.Message;
  EXPECT_NE(E.Message.find("no Galois key"), std::string::npos) << E.Message;
  // All four amounts count as rotations against the node's stats.
  EXPECT_EQ(VB.nodeStats().back().Rotations, 4u);
}

/// Dead ciphertext: a branch that never reaches the output compiles
/// cleanly (it is wasted work, not an error) but must surface as a
/// warning -- both in the standalone report and on the compiled
/// artifact's warning list.
TEST(Verifier, ReportsDeadCiphertextAsWarning) {
  TensorCircuit Circ("deadbranch");
  int In = Circ.input(1, 8, 8);
  int Dead = Circ.polyActivation(In, 0.25, 0.5); // act1: never consumed
  int Live = Circ.polyActivation(In, 0.25, 0.5); // act2: reaches output
  Circ.output(Live);

  CompiledCircuit Compiled = compileCircuit(Circ, baseOptions());
  const VerifierDiagnostic *OnArtifact =
      findDiag(Compiled.Warnings, ErrorCode::DeadCiphertext,
               Severity::Warning);
  ASSERT_NE(OnArtifact, nullptr);
  EXPECT_EQ(OnArtifact->NodeId, Dead);
  EXPECT_EQ(OnArtifact->Layer, "act1");

  VerificationReport R = verifyCircuit(Circ, Compiled);
  EXPECT_TRUE(R.ok()) << R.str(); // dead work is a warning, not an error
  const VerifierDiagnostic *D =
      findDiag(R.Diagnostics, ErrorCode::DeadCiphertext, Severity::Warning);
  ASSERT_NE(D, nullptr) << R.str();
  EXPECT_EQ(D->NodeId, Dead);
  EXPECT_EQ(D->Layer, "act1");
  EXPECT_NE(D->Message.find("never reaches"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Clean networks and the service API.
//===----------------------------------------------------------------------===//

TEST(Verifier, CleanLeNetVariantsVerifyWithZeroErrors) {
  struct Variant {
    TensorCircuit Circ;
    const char *FirstConv;
  };
  Variant Variants[] = {{makeLeNet5Small(/*Reduction=*/2), "conv1"},
                        {makeLeNet5Medium(/*Reduction=*/4), "conv1"}};
  for (Variant &V : Variants) {
    // compileCircuit runs the verifier itself (PostCompileVerify): it
    // throwing here would already fail the test.
    CompiledCircuit Compiled = compileCircuit(V.Circ, baseOptions());
    VerificationReport R = verifyCircuit(V.Circ, Compiled);
    EXPECT_EQ(R.errors(), 0u) << R.str();
    EXPECT_TRUE(R.ok());
    // Provenance map: the builder's default labels name the layers.
    EXPECT_EQ(V.Circ.label(1), V.FirstConv);
    ASSERT_FALSE(R.LayerDepth.empty());
    std::string Table = R.depthTableStr();
    EXPECT_NE(Table.find("conv1"), std::string::npos) << Table;
    EXPECT_NE(Table.find("fc1"), std::string::npos) << Table;
    // The hotspot metric is per-ciphertext: the degree-2 activations
    // (scalar mul + squaring = 2 levels on one ciphertext) always earn a
    // note, and it is a note, never an error. Layers that only fan one
    // rescale across many parallel ciphertexts (fc1's 16 rows) must not.
    const VerifierDiagnostic *Hot =
        findDiag(R.Diagnostics, ErrorCode::DepthHotspot, Severity::Note);
    ASSERT_NE(Hot, nullptr) << R.str();
    bool ActIsHot = false, Fc1IsHot = false;
    for (const VerifierDiagnostic &D : R.Diagnostics) {
      if (D.Code != ErrorCode::DepthHotspot)
        continue;
      EXPECT_EQ(D.Sev, Severity::Note);
      ActIsHot |= D.Layer.substr(0, 3) == "act";
      Fc1IsHot |= D.Layer == "fc1";
    }
    EXPECT_TRUE(ActIsHot) << R.str();
    EXPECT_FALSE(Fc1IsHot) << R.str();
    // Anything non-fatal the pass found also rode along on the artifact.
    EXPECT_EQ(Compiled.Warnings.size(), R.Diagnostics.size());
  }
}

TEST(Verifier, ServiceOverloadReportsCompilationFailure) {
  TensorCircuit Circ("abyss");
  int X = Circ.input(1, 8, 8);
  for (int I = 0; I < 60; ++I)
    X = Circ.polyActivation(X, 0.25, 0.5);
  Circ.output(X);

  VerificationReport R = verifyCircuit(Circ, baseOptions());
  EXPECT_FALSE(R.ok());
  ASSERT_FALSE(R.Diagnostics.empty());
  EXPECT_EQ(R.Diagnostics.front().Sev, Severity::Error);
  EXPECT_EQ(R.Diagnostics.front().Layer, "compilation");
  EXPECT_NE(R.str().find("error"), std::string::npos);
}

TEST(Verifier, PostCompileVerifyCanBeDisabled) {
  TensorCircuit Circ("deadbranch-off");
  int In = Circ.input(1, 8, 8);
  (void)Circ.polyActivation(In, 0.25, 0.5); // dead branch
  int Live = Circ.polyActivation(In, 0.25, 0.5);
  Circ.output(Live);

  CompilerOptions O = baseOptions();
  O.PostCompileVerify = false;
  CompiledCircuit Compiled = compileCircuit(Circ, O);
  EXPECT_TRUE(Compiled.Warnings.empty());
}

} // namespace
