//===- test_bigint.cpp - Unit tests for BigInt -----------------------------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "math/BigInt.h"

#include "support/Prng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace chet;

namespace {

TEST(BigInt, ConstructionFromInt64) {
  EXPECT_TRUE(BigInt().isZero());
  EXPECT_TRUE(BigInt(0).isZero());
  EXPECT_FALSE(BigInt(1).isZero());
  EXPECT_FALSE(BigInt(1).isNegative());
  EXPECT_TRUE(BigInt(-1).isNegative());
  EXPECT_EQ(BigInt(42).toDouble(), 42.0);
  EXPECT_EQ(BigInt(-42).toDouble(), -42.0);
  EXPECT_EQ(BigInt(INT64_MIN).toDouble(), -9223372036854775808.0);
}

TEST(BigInt, AdditionAgainstInt64) {
  Prng Rng(1);
  for (int I = 0; I < 1000; ++I) {
    int64_t A = static_cast<int64_t>(Rng.next()) >> 16;
    int64_t B = static_cast<int64_t>(Rng.next()) >> 16;
    BigInt X(A);
    X += BigInt(B);
    EXPECT_EQ(X.toDouble(), static_cast<double>(A + B)) << A << " + " << B;
  }
}

TEST(BigInt, SubtractionAgainstInt64) {
  Prng Rng(2);
  for (int I = 0; I < 1000; ++I) {
    int64_t A = static_cast<int64_t>(Rng.next()) >> 16;
    int64_t B = static_cast<int64_t>(Rng.next()) >> 16;
    BigInt X(A);
    X -= BigInt(B);
    EXPECT_EQ(X.toDouble(), static_cast<double>(A - B)) << A << " - " << B;
  }
}

TEST(BigInt, CancellationToZero) {
  BigInt X(123456789);
  X -= BigInt(123456789);
  EXPECT_TRUE(X.isZero());
  X += BigInt(-5);
  X += BigInt(5);
  EXPECT_TRUE(X.isZero());
}

TEST(BigInt, ShiftLeftRightInverse) {
  Prng Rng(3);
  for (int Shift : {1, 7, 63, 64, 65, 130, 1000}) {
    int64_t V = static_cast<int64_t>(Rng.next() >> 2) - (1LL << 61);
    BigInt X(V);
    X.shiftLeft(Shift);
    X.shiftRightTrunc(Shift);
    EXPECT_EQ(X.toDouble(), static_cast<double>(V)) << "shift " << Shift;
  }
}

TEST(BigInt, ShiftRightRounds) {
  BigInt X(10);
  X.shiftRightRound(2); // 10/4 = 2.5 -> 3 (ties away from zero)
  EXPECT_EQ(X.toDouble(), 3.0);
  BigInt Y(9);
  Y.shiftRightRound(2); // 2.25 -> 2
  EXPECT_EQ(Y.toDouble(), 2.0);
  BigInt Z(-10);
  Z.shiftRightRound(2); // -2.5 -> -3
  EXPECT_EQ(Z.toDouble(), -3.0);
}

TEST(BigInt, MulU64AgainstDouble) {
  Prng Rng(4);
  for (int I = 0; I < 500; ++I) {
    uint64_t A = Rng.nextBounded(1ULL << 50);
    uint64_t M = Rng.nextBounded(1ULL << 50);
    BigInt X(static_cast<int64_t>(A));
    X.mulU64(M);
    double Expected = static_cast<double>(A) * static_cast<double>(M);
    EXPECT_NEAR(X.toDouble(), Expected, Expected * 1e-12);
  }
}

TEST(BigInt, AddMulAccumulates) {
  BigInt Acc;
  BigInt Base(1);
  Base.shiftLeft(100);
  Acc.addMul(Base, 7); // 7 * 2^100
  Acc.addMul(Base, 3); // + 3 * 2^100 = 10 * 2^100
  BigInt Expected(10);
  Expected.shiftLeft(100);
  EXPECT_EQ(Acc, Expected);
}

TEST(BigInt, PowerOfTwoBitLength) {
  for (int Bits : {0, 1, 63, 64, 100, 1000, 2000}) {
    BigInt P = BigInt::powerOfTwo(Bits);
    EXPECT_EQ(P.bitLength(), Bits + 1);
  }
}

TEST(BigInt, FromDoubleRoundTrip) {
  Prng Rng(5);
  for (int I = 0; I < 500; ++I) {
    double V = Rng.nextDouble(-1e15, 1e15);
    BigInt X = BigInt::fromDouble(V);
    EXPECT_NEAR(X.toDouble(), std::round(V), 0.5001);
  }
}

TEST(BigInt, FromDoubleLargeMagnitudes) {
  double V = std::ldexp(1.2345, 300);
  BigInt X = BigInt::fromDouble(V);
  EXPECT_NEAR(X.toDouble() / V, 1.0, 1e-12);
  BigInt Y = BigInt::fromDouble(-V);
  EXPECT_NEAR(Y.toDouble() / V, -1.0, 1e-12);
}

TEST(BigInt, ModPrimeMatchesInt64) {
  Modulus Q(1000000007ULL);
  Prng Rng(6);
  for (int I = 0; I < 500; ++I) {
    int64_t V = static_cast<int64_t>(Rng.next()) >> 4;
    BigInt X(V);
    int64_t Expected = V % static_cast<int64_t>(Q.value());
    if (Expected < 0)
      Expected += Q.value();
    EXPECT_EQ(X.modPrime(Q), static_cast<uint64_t>(Expected));
  }
}

TEST(BigInt, ModPrimeOfShiftedValue) {
  // (2^200) mod p computed independently via powMod.
  Modulus Q(998244353ULL);
  BigInt X = BigInt::powerOfTwo(200);
  EXPECT_EQ(X.modPrime(Q), powMod(2, 200, Q));
  X.negate();
  EXPECT_EQ(X.modPrime(Q), Q.negMod(powMod(2, 200, Q)));
}

TEST(BigInt, CenterMod2kSmall) {
  // Residues mod 16 centered into [-8, 8).
  for (int V = -40; V <= 40; ++V) {
    BigInt X(V);
    X.centerMod2k(4);
    int64_t R = ((V % 16) + 16) % 16;
    if (R >= 8)
      R -= 16;
    EXPECT_EQ(X.toDouble(), static_cast<double>(R)) << "V=" << V;
  }
}

TEST(BigInt, CenterMod2kLarge) {
  // (2^500 + 3) mod 2^100 = 3.
  BigInt X = BigInt::powerOfTwo(500);
  X += BigInt(3);
  X.centerMod2k(100);
  EXPECT_EQ(X.toDouble(), 3.0);
  // (2^99) mod 2^100 centered = -2^99... boundary maps to negative half.
  BigInt Y = BigInt::powerOfTwo(99);
  Y.centerMod2k(100);
  EXPECT_TRUE(Y.isNegative());
  EXPECT_EQ(Y.bitLength(), 100);
}

TEST(BigInt, CompareOrdering) {
  EXPECT_LT(BigInt(-5).compare(BigInt(3)), 0);
  EXPECT_GT(BigInt(3).compare(BigInt(-5)), 0);
  EXPECT_EQ(BigInt(7).compare(BigInt(7)), 0);
  EXPECT_LT(BigInt(-7).compare(BigInt(-5)), 0);
  BigInt Big = BigInt::powerOfTwo(300);
  EXPECT_GT(Big.compare(BigInt(INT64_MAX)), 0);
}

} // namespace
