//===- test_uint_arith.cpp - Unit tests for modular arithmetic -----------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "math/UIntArith.h"

#include "support/Prng.h"

#include <gtest/gtest.h>

using namespace chet;

namespace {

// Reference 128-bit modmul used to validate the Barrett path.
uint64_t refMulMod(uint64_t A, uint64_t B, uint64_t Q) {
  return static_cast<uint64_t>(
      static_cast<unsigned __int128>(A) * B % Q);
}

class ModulusParamTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ModulusParamTest, ReduceMatchesReference) {
  uint64_t Q = GetParam();
  Modulus Mod(Q);
  Prng Rng(Q);
  for (int I = 0; I < 1000; ++I) {
    uint64_t X = Rng.next();
    EXPECT_EQ(Mod.reduce(X), X % Q);
  }
}

TEST_P(ModulusParamTest, MulModMatchesReference) {
  uint64_t Q = GetParam();
  Modulus Mod(Q);
  Prng Rng(Q ^ 0x1234);
  for (int I = 0; I < 1000; ++I) {
    uint64_t A = Rng.nextBounded(Q);
    uint64_t B = Rng.nextBounded(Q);
    EXPECT_EQ(Mod.mulMod(A, B), refMulMod(A, B, Q));
  }
}

TEST_P(ModulusParamTest, Reduce128MatchesReference) {
  uint64_t Q = GetParam();
  Modulus Mod(Q);
  Prng Rng(Q ^ 0x9999);
  for (int I = 0; I < 1000; ++I) {
    unsigned __int128 X =
        (static_cast<unsigned __int128>(Rng.next()) << 64) | Rng.next();
    EXPECT_EQ(Mod.reduce128(X), static_cast<uint64_t>(X % Q));
  }
}

TEST_P(ModulusParamTest, AddSubNeg) {
  uint64_t Q = GetParam();
  Modulus Mod(Q);
  Prng Rng(Q ^ 0x777);
  for (int I = 0; I < 1000; ++I) {
    uint64_t A = Rng.nextBounded(Q);
    uint64_t B = Rng.nextBounded(Q);
    EXPECT_EQ(Mod.addMod(A, B), (A + B) % Q);
    EXPECT_EQ(Mod.subMod(A, B), (A + Q - B) % Q);
    EXPECT_EQ(Mod.addMod(A, Mod.negMod(A)), 0u);
  }
}

TEST_P(ModulusParamTest, ShoupMulMatchesBarrett) {
  uint64_t Q = GetParam();
  Modulus Mod(Q);
  Prng Rng(Q ^ 0xABCD);
  for (int I = 0; I < 500; ++I) {
    uint64_t W = Rng.nextBounded(Q);
    uint64_t WShoup = shoupPrecompute(W, Q);
    for (int J = 0; J < 4; ++J) {
      uint64_t X = Rng.nextBounded(Q);
      EXPECT_EQ(shoupMulMod(X, W, WShoup, Q), Mod.mulMod(X, W));
      uint64_t Lazy = shoupMulModLazy(X, W, WShoup, Q);
      EXPECT_LT(Lazy, 2 * Q);
      EXPECT_EQ(Lazy % Q, Mod.mulMod(X, W));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariousModuli, ModulusParamTest,
    ::testing::Values(2ULL, 3ULL, 97ULL, 65537ULL, (1ULL << 30) - 35,
                      1000000007ULL,
                      // NTT-friendly 50/60-bit primes.
                      1125899906826241ULL, 1152921504606584833ULL,
                      // Largest supported size (61 bits).
                      2305843009213693951ULL));

TEST(PowMod, SmallCases) {
  Modulus Q(97);
  EXPECT_EQ(powMod(2, 10, Q), 1024 % 97);
  EXPECT_EQ(powMod(5, 0, Q), 1u);
  EXPECT_EQ(powMod(5, 96, Q), 1u); // Fermat
}

TEST(InvMod, RoundTrips) {
  Modulus Q(1000000007ULL);
  Prng Rng(3);
  for (int I = 0; I < 200; ++I) {
    uint64_t A = Rng.nextBounded(Q.value() - 1) + 1;
    uint64_t Inv = invMod(A, Q);
    EXPECT_EQ(Q.mulMod(A, Inv), 1u);
  }
}

TEST(IsPrime, KnownValues) {
  EXPECT_FALSE(isPrime(0));
  EXPECT_FALSE(isPrime(1));
  EXPECT_TRUE(isPrime(2));
  EXPECT_TRUE(isPrime(3));
  EXPECT_FALSE(isPrime(4));
  EXPECT_TRUE(isPrime(97));
  EXPECT_FALSE(isPrime(1ULL << 40));
  EXPECT_TRUE(isPrime(1000000007ULL));
  EXPECT_TRUE(isPrime(2305843009213693951ULL)); // Mersenne prime 2^61-1
  EXPECT_FALSE(isPrime(2305843009213693951ULL - 2));
  // Carmichael numbers must be rejected.
  EXPECT_FALSE(isPrime(561));
  EXPECT_FALSE(isPrime(41041));
  EXPECT_FALSE(isPrime(825265));
}

TEST(PrimitiveRoot, HasExactOrder) {
  // q = 1 mod 2N for N = 1024.
  uint64_t QVal = 132120577; // 63 * 2^21 + 1
  ASSERT_TRUE(isPrime(QVal));
  Modulus Q(QVal);
  uint64_t Order = 2048;
  uint64_t Root = findPrimitiveRoot(Order, Q);
  ASSERT_NE(Root, 0u);
  EXPECT_EQ(powMod(Root, Order, Q), 1u);
  EXPECT_NE(powMod(Root, Order / 2, Q), 1u);
}

} // namespace
