//===- test_rns_ckks.cpp - Tests for the RNS-CKKS backend ------------------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ckks/RnsCkks.h"

#include "hisa/Hisa.h"
#include "support/Error.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

using namespace chet;

static_assert(HisaBackend<RnsCkksBackend>,
              "RnsCkksBackend must satisfy the HISA concept");

namespace {

constexpr double kScale = 1099511627776.0; // 2^40

class RnsCkksTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    RnsCkksParams P = RnsCkksParams::create(/*LogN=*/11, /*Levels=*/3);
    P.Security = SecurityLevel::None; // test-size ring
    Backend = new RnsCkksBackend(P);
  }
  static void TearDownTestSuite() {
    delete Backend;
    Backend = nullptr;
  }

  std::vector<double> randomValues(uint64_t Seed, double Lo = -10,
                                   double Hi = 10) {
    Prng Rng(Seed);
    std::vector<double> V(Backend->slotCount());
    for (auto &X : V)
      X = Rng.nextDouble(Lo, Hi);
    return V;
  }

  RnsCkksBackend::Ct encryptValues(const std::vector<double> &V,
                                   double Scale = kScale) {
    return Backend->encrypt(Backend->encode(V, Scale));
  }

  std::vector<double> decryptValues(const RnsCkksBackend::Ct &C) {
    return Backend->decode(Backend->decrypt(C));
  }

  static RnsCkksBackend *Backend;
};

RnsCkksBackend *RnsCkksTest::Backend = nullptr;

TEST_F(RnsCkksTest, EncryptDecryptRoundTrip) {
  auto V = randomValues(1);
  auto C = encryptValues(V);
  auto Back = decryptValues(C);
  for (size_t I = 0; I < V.size(); ++I)
    ASSERT_NEAR(Back[I], V[I], 1e-6) << "slot " << I;
}

TEST_F(RnsCkksTest, HomomorphicAddSub) {
  auto A = randomValues(2), B = randomValues(3);
  auto CA = encryptValues(A), CB = encryptValues(B);
  auto Sum = add(*Backend, CA, CB);
  auto Diff = sub(*Backend, CA, CB);
  auto SumBack = decryptValues(Sum);
  auto DiffBack = decryptValues(Diff);
  for (size_t I = 0; I < A.size(); ++I) {
    ASSERT_NEAR(SumBack[I], A[I] + B[I], 1e-5);
    ASSERT_NEAR(DiffBack[I], A[I] - B[I], 1e-5);
  }
}

TEST_F(RnsCkksTest, AddSubPlainAndScalar) {
  auto A = randomValues(4), B = randomValues(5);
  auto C = encryptValues(A);
  auto P = Backend->encode(B, kScale);
  Backend->addPlainAssign(C, P);
  Backend->addScalarAssign(C, 2.5);
  Backend->subScalarAssign(C, 1.0);
  auto Back = decryptValues(C);
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_NEAR(Back[I], A[I] + B[I] + 1.5, 1e-5);
}

TEST_F(RnsCkksTest, CiphertextMultiplicationWithRescale) {
  auto A = randomValues(6, -3, 3), B = randomValues(7, -3, 3);
  auto CA = encryptValues(A), CB = encryptValues(B);
  auto Prod = mul(*Backend, CA, CB);
  EXPECT_NEAR(Backend->scaleOf(Prod), kScale * kScale, 1.0);
  rescaleToFloor(*Backend, Prod, kScale);
  EXPECT_LT(Backend->scaleOf(Prod), kScale * kScale);
  EXPECT_EQ(Backend->levelOf(Prod), Backend->maxLevel() - 1);
  auto Back = decryptValues(Prod);
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_NEAR(Back[I], A[I] * B[I], 1e-4);
}

TEST_F(RnsCkksTest, SquaringTwiceConsumesTwoLevels) {
  auto A = randomValues(8, -2, 2);
  auto C = encryptValues(A);
  for (int Round = 0; Round < 2; ++Round) {
    auto C2 = mul(*Backend, C, C);
    rescaleToFloor(*Backend, C2, kScale);
    C = C2;
  }
  EXPECT_EQ(Backend->levelOf(C), Backend->maxLevel() - 2);
  auto Back = decryptValues(C);
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_NEAR(Back[I], A[I] * A[I] * A[I] * A[I],
                5e-3 * std::max(1.0, std::fabs(Back[I])));
}

TEST_F(RnsCkksTest, MulPlainAndScalar) {
  auto A = randomValues(9, -4, 4), W = randomValues(10, -2, 2);
  auto C = encryptValues(A);
  auto P = Backend->encode(W, kScale);
  auto CP = mulPlain(*Backend, C, P);
  rescaleToFloor(*Backend, CP, kScale);
  auto BackP = decryptValues(CP);
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_NEAR(BackP[I], A[I] * W[I], 1e-4);

  auto CS = mulScalar(*Backend, C, -1.5, uint64_t(kScale));
  rescaleToFloor(*Backend, CS, kScale);
  auto BackS = decryptValues(CS);
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_NEAR(BackS[I], A[I] * -1.5, 1e-4);
}

TEST_F(RnsCkksTest, RotationWithDedicatedKeys) {
  auto A = randomValues(11);
  size_t Slots = Backend->slotCount();
  for (int Step : {1, 2, 16, static_cast<int>(Slots) / 2}) {
    auto C = encryptValues(A);
    Backend->rotLeftAssign(C, Step);
    auto Back = decryptValues(C);
    for (size_t I = 0; I < Slots; ++I)
      ASSERT_NEAR(Back[I], A[(I + Step) % Slots], 1e-5)
          << "step " << Step << " slot " << I;
  }
}

TEST_F(RnsCkksTest, RotationRightAndComposition) {
  auto A = randomValues(12);
  size_t Slots = Backend->slotCount();
  auto C = encryptValues(A);
  Backend->rotRightAssign(C, 4);
  auto Back = decryptValues(C);
  for (size_t I = 0; I < Slots; ++I)
    ASSERT_NEAR(Back[I], A[(I + Slots - 4) % Slots], 1e-5);
}

TEST_F(RnsCkksTest, NonPow2RotationFallsBackToPow2Keys) {
  // Step 5 = 4 + 1 has no dedicated key by default.
  EXPECT_FALSE(Backend->hasRotationKey(5));
  auto A = randomValues(13);
  auto C = encryptValues(A);
  Backend->rotLeftAssign(C, 5);
  auto Back = decryptValues(C);
  size_t Slots = Backend->slotCount();
  for (size_t I = 0; I < Slots; ++I)
    ASSERT_NEAR(Back[I], A[(I + 5) % Slots], 1e-5);
}

TEST_F(RnsCkksTest, GeneratedKeyMakesRotationSingleHop) {
  Backend->generateRotationKeys({5});
  EXPECT_TRUE(Backend->hasRotationKey(5));
  auto A = randomValues(14);
  auto C = encryptValues(A);
  Backend->rotLeftAssign(C, 5);
  auto Back = decryptValues(C);
  size_t Slots = Backend->slotCount();
  for (size_t I = 0; I < Slots; ++I)
    ASSERT_NEAR(Back[I], A[(I + 5) % Slots], 1e-5);
}

TEST_F(RnsCkksTest, MaxRescaleFollowsChainSemantics) {
  auto C = encryptValues(randomValues(15));
  // Bound below the next prime: nothing to rescale by.
  EXPECT_EQ(Backend->maxRescale(C, 1), 1u);
  EXPECT_EQ(Backend->maxRescale(C, 1000), 1u);
  // Bound above the last prime: exactly that prime.
  uint64_t QLast = Backend->params().ChainPrimes.back();
  EXPECT_EQ(Backend->maxRescale(C, QLast), QLast);
  EXPECT_EQ(Backend->maxRescale(C, QLast + 1000), QLast);
}

TEST_F(RnsCkksTest, AdditionAlignsLevels) {
  auto A = randomValues(16, -2, 2), B = randomValues(17, -2, 2);
  auto CA = encryptValues(A);
  auto CB = encryptValues(B);
  // Push CA one level down via a square + rescale.
  auto CA2 = mul(*Backend, CA, CA);
  rescaleToFloor(*Backend, CA2, kScale);
  // Multiply CB by a plaintext of ones, rescale by the same prime so the
  // scales match exactly, then add.
  auto Ones = Backend->encode(std::vector<double>(Backend->slotCount(), 1.0),
                              kScale);
  auto CB2 = mulPlain(*Backend, CB, Ones);
  rescaleToFloor(*Backend, CB2, kScale);
  EXPECT_EQ(Backend->levelOf(CA2), Backend->levelOf(CB2));
  auto Sum = add(*Backend, CA2, CB2);
  auto Back = decryptValues(Sum);
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_NEAR(Back[I], A[I] * A[I] + B[I], 5e-4);
}

TEST_F(RnsCkksTest, ParamsReportModulusSizes) {
  const RnsCkksParams &P = Backend->params();
  EXPECT_EQ(P.levels(), 3);
  EXPECT_GT(P.logQ(), 59 + 3 * 39);
  EXPECT_GT(P.logQP(), P.logQ());
}

TEST_F(RnsCkksTest, CandidateChainIsDisjointFromSpecial) {
  auto Chain = RnsCkksParams::candidateChain(5);
  uint64_t Special = RnsCkksParams::candidateSpecial();
  for (uint64_t Q : Chain)
    EXPECT_NE(Q, Special);
}

TEST_F(RnsCkksTest, SecurityCheckRejectsOversizedModulus) {
  RnsCkksParams P = RnsCkksParams::create(/*LogN=*/11, /*Levels=*/3);
  P.Security = SecurityLevel::Classical128; // budget is 54 bits at LogN=11
  EXPECT_THROW(RnsCkksBackend{P}, SecurityBudgetError);
}

TEST_F(RnsCkksTest, FreeReleasesStorage) {
  auto C = encryptValues(randomValues(18));
  Backend->freeCt(C);
  EXPECT_TRUE(C.C0.empty());
  EXPECT_TRUE(C.C1.empty());
}

} // namespace
