//===- test_ir.cpp - Unit tests for the tensor-circuit IR ------------------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Ir.h"

#include "runtime/ReferenceOps.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

using namespace chet;

namespace {

ConvWeights someConv(int Cout, int Cin, int K, uint64_t Seed) {
  ConvWeights Wt(Cout, Cin, K, K);
  Prng Rng(Seed);
  for (double &V : Wt.W)
    V = Rng.nextDouble(-1, 1);
  return Wt;
}

TEST(Ir, ShapeInference) {
  TensorCircuit Circ("t");
  int X = Circ.input(3, 28, 28);
  EXPECT_EQ(Circ.op(X).C, 3);
  X = Circ.conv2d(X, someConv(8, 3, 5, 1), 1, 2);
  EXPECT_EQ(Circ.op(X).C, 8);
  EXPECT_EQ(Circ.op(X).H, 28); // 'same' padding
  X = Circ.averagePool(X, 2, 2);
  EXPECT_EQ(Circ.op(X).H, 14);
  X = Circ.conv2d(X, someConv(4, 8, 3, 2), 2, 0);
  EXPECT_EQ(Circ.op(X).H, 6); // (14 - 3)/2 + 1
  X = Circ.fullyConnected(X, FcWeights(10, 4 * 6 * 6));
  EXPECT_EQ(Circ.op(X).C, 10);
  EXPECT_EQ(Circ.op(X).H, 1);
  Circ.output(X);
}

TEST(Ir, PadPhysAccountsForAccumulatedStride) {
  TensorCircuit Circ("t");
  int X = Circ.input(1, 28, 28);
  X = Circ.conv2d(X, someConv(2, 1, 5, 2), 1, 2); // pad 2 at stride 1
  X = Circ.averagePool(X, 2, 2);                  // accumulate stride 2
  X = Circ.conv2d(X, someConv(2, 2, 5, 3), 1, 2); // pad 2 at stride 2
  Circ.output(X);
  EXPECT_EQ(Circ.padPhysNeeded(), 4);
}

TEST(Ir, PadPhysZeroWithoutPadding) {
  TensorCircuit Circ("t");
  int X = Circ.input(1, 8, 8);
  X = Circ.conv2d(X, someConv(2, 1, 3, 4), 1, 0);
  Circ.output(X);
  EXPECT_EQ(Circ.padPhysNeeded(), 0);
}

TEST(Ir, LayerAndDepthCounts) {
  TensorCircuit Circ("t");
  int X = Circ.input(1, 8, 8);
  X = Circ.conv2d(X, someConv(2, 1, 3, 5), 1, 1);
  X = Circ.polyActivation(X, 0.5, 1.0);
  X = Circ.conv2d(X, someConv(2, 2, 3, 6), 1, 1);
  X = Circ.polyActivation(X, 0.5, 1.0);
  X = Circ.fullyConnected(X, FcWeights(4, 2 * 8 * 8));
  X = Circ.polyActivation(X, 0.0, 1.0); // linear: no ct-ct multiply
  Circ.output(X);
  EXPECT_EQ(Circ.convLayerCount(), 2);
  EXPECT_EQ(Circ.fcLayerCount(), 1);
  EXPECT_EQ(Circ.activationLayerCount(), 3);
  EXPECT_EQ(Circ.ctMultiplicativeDepth(), 2);
}

TEST(Ir, FpOperationCountMatchesHandCount) {
  TensorCircuit Circ("t");
  int X = Circ.input(1, 6, 6);
  X = Circ.conv2d(X, someConv(2, 1, 3, 7), 1, 0); // out 2x4x4
  Circ.output(X);
  // 2*4*4 outputs, each 2*(1*3*3) + 1 ops.
  EXPECT_EQ(Circ.fpOperationCount(), 32u * 19u);
}

TEST(Ir, ConsumersTracksFanOut) {
  TensorCircuit Circ("t");
  int X = Circ.input(1, 8, 8);
  int A = Circ.conv2d(X, someConv(2, 1, 1, 8), 1, 0);
  int B = Circ.conv2d(X, someConv(2, 1, 1, 9), 1, 0);
  int C = Circ.concatChannels(A, B);
  Circ.output(C);
  auto Consumers = Circ.consumersOf(X);
  EXPECT_EQ(Consumers.size(), 2u);
  EXPECT_EQ(Circ.consumersOf(C).size(), 1u);
  EXPECT_EQ(Circ.op(C).C, 4);
}

TEST(Ir, PlainEvaluationComposesReferenceOps) {
  Prng Rng(11);
  Tensor3 Image(1, 10, 10);
  for (double &V : Image.Data)
    V = Rng.nextDouble(-1, 1);

  ConvWeights Conv = someConv(3, 1, 3, 12);
  FcWeights Fc(5, 3 * 4 * 4);
  for (double &V : Fc.W)
    V = Rng.nextDouble(-1, 1);

  TensorCircuit Circ("t");
  int X = Circ.input(1, 10, 10);
  X = Circ.conv2d(X, Conv, 1, 0); // 3x8x8
  X = Circ.polyActivation(X, 0.25, 0.5);
  X = Circ.averagePool(X, 2, 2); // 3x4x4
  X = Circ.fullyConnected(X, Fc);
  Circ.output(X);

  Tensor3 Got = Circ.evaluatePlain(Image);
  Tensor3 Want = refFullyConnected(
      refAveragePool(refPolyActivation(refConv2d(Image, Conv, 1, 0), 0.25,
                                       0.5),
                     2, 2),
      Fc);
  EXPECT_LT(maxAbsDiff(Got, Want), 1e-12);
}

TEST(Ir, PlainEvaluationHandlesConcat) {
  Prng Rng(13);
  Tensor3 Image(2, 6, 6);
  for (double &V : Image.Data)
    V = Rng.nextDouble(-1, 1);
  ConvWeights A = someConv(2, 2, 1, 14);
  ConvWeights B = someConv(3, 2, 3, 15);

  TensorCircuit Circ("t");
  int X = Circ.input(2, 6, 6);
  int Ca = Circ.conv2d(X, A, 1, 0);
  int Cb = Circ.conv2d(X, B, 1, 1);
  int Cat = Circ.concatChannels(Ca, Cb);
  Circ.output(Cat);

  Tensor3 Got = Circ.evaluatePlain(Image);
  Tensor3 Want = refConcatChannels(refConv2d(Image, A, 1, 0),
                                   refConv2d(Image, B, 1, 1));
  EXPECT_LT(maxAbsDiff(Got, Want), 1e-12);
}

} // namespace
