//===- test_crt.cpp - Unit tests for the CRT basis -------------------------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "math/Crt.h"

#include "math/PrimeGen.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

using namespace chet;

namespace {

TEST(Crt, DecomposeReconstructSmall) {
  CrtBasis Basis({97, 101, 103});
  for (int64_t V = -500000; V <= 500000; V += 12345) {
    BigInt X(V);
    uint64_t Residues[3];
    Basis.decompose(X, Residues);
    BigInt Back = Basis.reconstructCentered(Residues);
    EXPECT_EQ(Back.toDouble(), static_cast<double>(V)) << V;
  }
}

TEST(Crt, RoundTripLargeValues) {
  auto Primes = generateNttPrimes(59, 12, 8);
  CrtBasis Basis(Primes);
  Prng Rng(1);
  for (int I = 0; I < 200; ++I) {
    // Random ~400-bit signed value (product is ~472 bits).
    BigInt X(static_cast<int64_t>(Rng.next() >> 1));
    for (int J = 0; J < 6; ++J) {
      X.shiftLeft(55);
      X += BigInt(static_cast<int64_t>(Rng.next() >> 10) - (1LL << 53));
    }
    uint64_t Residues[8];
    Basis.decompose(X, Residues);
    BigInt Back = Basis.reconstructCentered(Residues);
    EXPECT_EQ(Back.compare(X), 0);
  }
}

TEST(Crt, NegativeValuesReconstructCentered) {
  auto Primes = generateNttPrimes(59, 10, 4);
  CrtBasis Basis(Primes);
  BigInt X = BigInt::powerOfTwo(150);
  X.negate();
  uint64_t Residues[4];
  Basis.decompose(X, Residues);
  BigInt Back = Basis.reconstructCentered(Residues);
  EXPECT_EQ(Back.compare(X), 0);
  EXPECT_TRUE(Back.isNegative());
}

TEST(Crt, ResiduesAreReduced) {
  auto Primes = generateNttPrimes(59, 10, 5);
  CrtBasis Basis(Primes);
  Prng Rng(2);
  BigInt X(static_cast<int64_t>(Rng.next()));
  X.shiftLeft(200);
  uint64_t Residues[5];
  Basis.decompose(X, Residues);
  for (int I = 0; I < 5; ++I)
    EXPECT_LT(Residues[I], Basis.prime(I).value());
}

TEST(Crt, HomomorphicUnderAddition) {
  auto Primes = generateNttPrimes(59, 10, 4);
  CrtBasis Basis(Primes);
  Prng Rng(3);
  BigInt A(static_cast<int64_t>(Rng.next() >> 8));
  BigInt B(static_cast<int64_t>(Rng.next() >> 8));
  A.shiftLeft(120);
  B.shiftLeft(100);
  uint64_t Ra[4], Rb[4], Rsum[4];
  Basis.decompose(A, Ra);
  Basis.decompose(B, Rb);
  for (int I = 0; I < 4; ++I)
    Rsum[I] = Basis.prime(I).addMod(Ra[I], Rb[I]);
  BigInt Sum = A;
  Sum += B;
  BigInt Back = Basis.reconstructCentered(Rsum);
  EXPECT_EQ(Back.compare(Sum), 0);
}

TEST(Crt, ProductMatchesPrimeProduct) {
  CrtBasis Basis({3, 5, 7});
  EXPECT_EQ(Basis.product().toDouble(), 105.0);
  EXPECT_EQ(Basis.count(), 3);
}

} // namespace
