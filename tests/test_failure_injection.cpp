//===- test_failure_injection.cpp - Negative-path and tamper tests ---------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the failure modes a privacy-preserving deployment cares
/// about: decryption under the wrong key yields no information, tampered
/// ciphertexts do not silently produce near-correct results, and the
/// library's invariant checks fire (as aborts) instead of computing
/// garbage when misused.
///
//===----------------------------------------------------------------------===//

#include "ckks/RnsCkks.h"

#include "ckks/BigCkks.h"
#include "hisa/Hisa.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace chet;

namespace {

RnsCkksParams smallParams(uint64_t Seed) {
  RnsCkksParams P = RnsCkksParams::create(11, 3);
  P.Security = SecurityLevel::None;
  P.Seed = Seed;
  P.StockPow2Keys = false;
  return P;
}

std::vector<double> values(size_t N, uint64_t Seed) {
  Prng Rng(Seed);
  std::vector<double> V(N);
  for (auto &X : V)
    X = Rng.nextDouble(-4, 4);
  return V;
}

TEST(FailureInjection, WrongKeyDecryptsToNoise) {
  RnsCkksBackend Alice(smallParams(1));
  RnsCkksBackend Eve(smallParams(2)); // different secret key
  auto V = values(Alice.slotCount(), 3);
  auto Ct = Alice.encrypt(Alice.encode(V, 1LL << 40));
  auto Stolen = Eve.decode(Eve.decrypt(Ct));
  // Under the wrong key the "plaintext" is essentially uniform mod Q,
  // decoding to astronomically large junk; nothing resembling V.
  double MaxMagnitude = 0;
  for (double X : Stolen)
    MaxMagnitude = std::max(MaxMagnitude, std::fabs(X));
  EXPECT_GT(MaxMagnitude, 1e6);
}

TEST(FailureInjection, TamperedCiphertextCorruptsResult) {
  RnsCkksBackend Backend(smallParams(4));
  auto V = values(Backend.slotCount(), 5);
  auto Ct = Backend.encrypt(Backend.encode(V, 1LL << 40));
  // Flip a handful of NTT-domain words: the error spreads across every
  // slot after the inverse transform (no silent local corruption).
  Prng Rng(6);
  for (int I = 0; I < 4; ++I)
    Ct.C0[Rng.nextBounded(Ct.C0.size())] ^= 0xDEADBEEF;
  auto Back = Backend.decode(Backend.decrypt(Ct));
  int SlotsOff = 0;
  for (size_t I = 0; I < V.size(); ++I)
    SlotsOff += std::fabs(Back[I] - V[I]) > 1.0;
  EXPECT_GT(SlotsOff, static_cast<int>(V.size()) / 2);
}

TEST(FailureInjection, EncryptionIsNonDeterministic) {
  // FHE encryption samples fresh randomness per call (Section 3.2:
  // "FHE is non-deterministic"); two encryptions of the same value must
  // differ in nearly every word.
  RnsCkksBackend Backend(smallParams(7));
  auto V = values(Backend.slotCount(), 8);
  auto P = Backend.encode(V, 1LL << 40);
  auto C1 = Backend.encrypt(P);
  auto C2 = Backend.encrypt(P);
  size_t Same = 0;
  for (size_t I = 0; I < C1.C0.size(); ++I)
    Same += C1.C0[I] == C2.C0[I];
  EXPECT_LT(Same, C1.C0.size() / 100);
}

TEST(FailureInjection, RotationWithoutAnyKeysAborts) {
  RnsCkksBackend Backend(smallParams(9)); // StockPow2Keys = false
  auto Ct = Backend.encrypt(
      Backend.encode(values(Backend.slotCount(), 10), 1LL << 40));
  EXPECT_DEATH(Backend.rotLeftAssign(Ct, 3), "rotation key");
}

TEST(FailureInjection, RescalePastBasePrimeAborts) {
  RnsCkksBackend Backend(smallParams(11));
  auto Ct = Backend.encrypt(
      Backend.encode(values(Backend.slotCount(), 12), 1LL << 40));
  // Consume every level...
  while (Backend.levelOf(Ct) > 0) {
    Backend.mulScalarAssign(Ct, 1.0, uint64_t(1) << 40);
    uint64_t D = Backend.maxRescale(Ct, UINT64_MAX);
    ASSERT_GT(D, 1u);
    Backend.rescaleAssign(Ct, D);
  }
  // ...then one more rescale must refuse rather than corrupt.
  EXPECT_EQ(Backend.maxRescale(Ct, UINT64_MAX), 1u);
  EXPECT_DEATH(Backend.rescaleAssign(Ct, 2), "rescale");
}

TEST(FailureInjection, MismatchedAdditionScalesAbort) {
  RnsCkksBackend Backend(smallParams(13));
  auto A = Backend.encrypt(
      Backend.encode(values(Backend.slotCount(), 14), 1LL << 40));
  auto B = Backend.encrypt(
      Backend.encode(values(Backend.slotCount(), 15), 1LL << 30));
  EXPECT_DEATH(Backend.addAssign(A, B), "scale mismatch");
}

TEST(FailureInjection, BigCkksWrongKeyDecryptsToNoise) {
  BigCkksParams P;
  P.LogN = 10;
  P.LogQ = 100;
  P.Security = SecurityLevel::None;
  P.StockPow2Keys = false;
  P.Seed = 21;
  BigCkksBackend Alice(P);
  P.Seed = 22;
  BigCkksBackend Eve(P);
  auto V = values(Alice.slotCount(), 23);
  auto Ct = Alice.encrypt(Alice.encode(V, 1 << 25));
  auto Stolen = Eve.decode(Eve.decrypt(Ct));
  double MaxMagnitude = 0;
  for (double X : Stolen)
    MaxMagnitude = std::max(MaxMagnitude, std::fabs(X));
  EXPECT_GT(MaxMagnitude, 1e3);
}

TEST(FailureInjection, OversizedEncodeAborts) {
  RnsCkksBackend Backend(smallParams(24));
  std::vector<double> Huge(Backend.slotCount(), 1.0);
  // Scale * value overflows the 62-bit coefficient embedding.
  EXPECT_DEATH((void)Backend.encode(Huge, std::ldexp(1.0, 63)),
               "62-bit embedding");
}

} // namespace
