//===- test_failure_injection.cpp - Negative-path and tamper tests ---------===//
//
// Part of the CHET reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the failure modes a privacy-preserving deployment cares
/// about: decryption under the wrong key yields no information, tampered
/// ciphertexts do not silently produce near-correct results, and the
/// library's misuse guards raise typed ChetErrors -- in every build type,
/// including Release with NDEBUG -- instead of computing garbage.
///
//===----------------------------------------------------------------------===//

#include "ckks/RnsCkks.h"

#include "ckks/BigCkks.h"
#include "hisa/Hisa.h"
#include "support/Error.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

using namespace chet;

namespace {

/// Asserts that \p F throws a ChetError with exactly \p Code and a
/// message containing \p Substr.
template <typename Fn>
::testing::AssertionResult throwsChetError(Fn &&F, ErrorCode Code,
                                           const std::string &Substr) {
  try {
    F();
  } catch (const ChetError &E) {
    if (E.code() != Code)
      return ::testing::AssertionFailure()
             << "wrong error code: got " << errorCodeName(E.code())
             << ", want " << errorCodeName(Code) << " (" << E.what() << ")";
    if (std::string(E.what()).find(Substr) == std::string::npos)
      return ::testing::AssertionFailure()
             << "message \"" << E.what() << "\" lacks \"" << Substr << "\"";
    return ::testing::AssertionSuccess();
  } catch (const std::exception &E) {
    return ::testing::AssertionFailure()
           << "non-ChetError exception: " << E.what();
  }
  return ::testing::AssertionFailure() << "no exception thrown";
}

RnsCkksParams smallParams(uint64_t Seed) {
  RnsCkksParams P = RnsCkksParams::create(11, 3);
  P.Security = SecurityLevel::None;
  P.Seed = Seed;
  P.StockPow2Keys = false;
  return P;
}

std::vector<double> values(size_t N, uint64_t Seed) {
  Prng Rng(Seed);
  std::vector<double> V(N);
  for (auto &X : V)
    X = Rng.nextDouble(-4, 4);
  return V;
}

TEST(FailureInjection, WrongKeyDecryptsToNoise) {
  RnsCkksBackend Alice(smallParams(1));
  RnsCkksBackend Eve(smallParams(2)); // different secret key
  auto V = values(Alice.slotCount(), 3);
  auto Ct = Alice.encrypt(Alice.encode(V, 1LL << 40));
  auto Stolen = Eve.decode(Eve.decrypt(Ct));
  // Under the wrong key the "plaintext" is essentially uniform mod Q,
  // decoding to astronomically large junk; nothing resembling V.
  double MaxMagnitude = 0;
  for (double X : Stolen)
    MaxMagnitude = std::max(MaxMagnitude, std::fabs(X));
  EXPECT_GT(MaxMagnitude, 1e6);
}

TEST(FailureInjection, TamperedCiphertextCorruptsResult) {
  RnsCkksBackend Backend(smallParams(4));
  auto V = values(Backend.slotCount(), 5);
  auto Ct = Backend.encrypt(Backend.encode(V, 1LL << 40));
  // Flip a handful of NTT-domain words: the error spreads across every
  // slot after the inverse transform (no silent local corruption).
  Prng Rng(6);
  for (int I = 0; I < 4; ++I)
    Ct.C0[Rng.nextBounded(Ct.C0.size())] ^= 0xDEADBEEF;
  auto Back = Backend.decode(Backend.decrypt(Ct));
  int SlotsOff = 0;
  for (size_t I = 0; I < V.size(); ++I)
    SlotsOff += std::fabs(Back[I] - V[I]) > 1.0;
  EXPECT_GT(SlotsOff, static_cast<int>(V.size()) / 2);
}

TEST(FailureInjection, EncryptionIsNonDeterministic) {
  // FHE encryption samples fresh randomness per call (Section 3.2:
  // "FHE is non-deterministic"); two encryptions of the same value must
  // differ in nearly every word.
  RnsCkksBackend Backend(smallParams(7));
  auto V = values(Backend.slotCount(), 8);
  auto P = Backend.encode(V, 1LL << 40);
  auto C1 = Backend.encrypt(P);
  auto C2 = Backend.encrypt(P);
  size_t Same = 0;
  for (size_t I = 0; I < C1.C0.size(); ++I)
    Same += C1.C0[I] == C2.C0[I];
  EXPECT_LT(Same, C1.C0.size() / 100);
}

TEST(FailureInjection, RotationWithoutAnyKeysThrows) {
  RnsCkksBackend Backend(smallParams(9)); // StockPow2Keys = false
  auto Ct = Backend.encrypt(
      Backend.encode(values(Backend.slotCount(), 10), 1LL << 40));
  // The error names the requested amount and the (empty) key set.
  EXPECT_TRUE(throwsChetError([&] { Backend.rotLeftAssign(Ct, 3); },
                              ErrorCode::MissingRotationKey,
                              "no Galois key for rotation by 3"));
  EXPECT_TRUE(throwsChetError([&] { Backend.rotLeftAssign(Ct, 3); },
                              ErrorCode::MissingRotationKey,
                              "no rotation keys generated"));
}

TEST(FailureInjection, RotationErrorListsAvailableKeySet) {
  RnsCkksParams P = smallParams(25);
  RnsCkksBackend Backend(P);
  Backend.generateRotationKeys({1, 4});
  auto Ct = Backend.encrypt(
      Backend.encode(values(Backend.slotCount(), 26), 1LL << 40));
  // 3 decomposes into hops 1 + 2; the key for 2 is missing.
  EXPECT_TRUE(throwsChetError([&] { Backend.rotLeftAssign(Ct, 3); },
                              ErrorCode::MissingRotationKey, "{1, 4}"));
  // The listed keys themselves still work.
  EXPECT_NO_THROW(Backend.rotLeftAssign(Ct, 4));
}

TEST(FailureInjection, RescalePastBasePrimeThrows) {
  RnsCkksBackend Backend(smallParams(11));
  auto Ct = Backend.encrypt(
      Backend.encode(values(Backend.slotCount(), 12), 1LL << 40));
  // Consume every level...
  while (Backend.levelOf(Ct) > 0) {
    Backend.mulScalarAssign(Ct, 1.0, uint64_t(1) << 40);
    uint64_t D = Backend.maxRescale(Ct, UINT64_MAX);
    ASSERT_GT(D, 1u);
    Backend.rescaleAssign(Ct, D);
  }
  // ...then one more rescale must refuse rather than corrupt.
  EXPECT_EQ(Backend.maxRescale(Ct, UINT64_MAX), 1u);
  EXPECT_TRUE(throwsChetError([&] { Backend.rescaleAssign(Ct, 2); },
                              ErrorCode::LevelExhausted, "rescale"));
}

TEST(FailureInjection, MismatchedAdditionScalesThrow) {
  RnsCkksBackend Backend(smallParams(13));
  auto A = Backend.encrypt(
      Backend.encode(values(Backend.slotCount(), 14), 1LL << 40));
  auto B = Backend.encrypt(
      Backend.encode(values(Backend.slotCount(), 15), 1LL << 30));
  EXPECT_TRUE(throwsChetError([&] { Backend.addAssign(A, B); },
                              ErrorCode::ScaleMismatch, "scale mismatch"));
}

TEST(FailureInjection, BigCkksWrongKeyDecryptsToNoise) {
  BigCkksParams P;
  P.LogN = 10;
  P.LogQ = 100;
  P.Security = SecurityLevel::None;
  P.StockPow2Keys = false;
  P.Seed = 21;
  BigCkksBackend Alice(P);
  P.Seed = 22;
  BigCkksBackend Eve(P);
  auto V = values(Alice.slotCount(), 23);
  auto Ct = Alice.encrypt(Alice.encode(V, 1 << 25));
  auto Stolen = Eve.decode(Eve.decrypt(Ct));
  double MaxMagnitude = 0;
  for (double X : Stolen)
    MaxMagnitude = std::max(MaxMagnitude, std::fabs(X));
  EXPECT_GT(MaxMagnitude, 1e3);
}

TEST(FailureInjection, OversizedEncodeThrows) {
  RnsCkksBackend Backend(smallParams(24));
  std::vector<double> Huge(Backend.slotCount(), 1.0);
  // Scale * value overflows the 62-bit coefficient embedding.
  EXPECT_TRUE(
      throwsChetError([&] { (void)Backend.encode(Huge, std::ldexp(1.0, 63)); },
                      ErrorCode::EncodingOverflow, "62-bit embedding"));
}

TEST(FailureInjection, MalformedCiphertextRejectedAtDecrypt) {
  RnsCkksBackend Backend(smallParams(27));
  auto Ct = Backend.encrypt(
      Backend.encode(values(Backend.slotCount(), 28), 1LL << 40));
  auto Truncated = Ct;
  Truncated.C0.resize(Truncated.C0.size() / 2);
  EXPECT_TRUE(throwsChetError([&] { (void)Backend.decrypt(Truncated); },
                              ErrorCode::MalformedCiphertext,
                              "does not match the parameters"));
  auto BadLevel = Ct;
  BadLevel.Level = 99;
  EXPECT_TRUE(throwsChetError([&] { (void)Backend.decrypt(BadLevel); },
                              ErrorCode::MalformedCiphertext,
                              "does not match the parameters"));
}

TEST(FailureInjection, InsecureParametersRejected) {
  // LogN = 11 cannot hold a 3-prime 60-bit chain at 128-bit security.
  RnsCkksParams P = RnsCkksParams::create(11, 3);
  P.Security = SecurityLevel::Classical128;
  EXPECT_TRUE(throwsChetError([&] { RnsCkksBackend Backend(P); },
                              ErrorCode::SecurityBudgetExceeded,
                              "security level"));
}

} // namespace
